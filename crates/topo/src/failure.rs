//! Non-destructive link-failure overlays.

use crate::{LinkId, NodeId, Topology};
use std::collections::BTreeSet;
use std::fmt;

/// Why a named link could not be resolved against a topology, or why a
/// resolved link could not change failure state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinkLookupError {
    /// No node with this name exists. `nearest` holds up to three
    /// closest-spelled node names (edit distance ≤ 2), so a typo'd trace
    /// line tells the operator what they probably meant.
    UnknownNode {
        /// The name as written.
        name: String,
        /// Closest existing names, best match first.
        nearest: Vec<String>,
    },
    /// Both nodes exist but share no link. `candidates` names the
    /// switches actually adjacent to the first node.
    NotAdjacent {
        /// First endpoint, as written.
        a: String,
        /// Second endpoint, as written.
        b: String,
        /// Switch names adjacent to `a` — valid second endpoints.
        candidates: Vec<String>,
    },
    /// The link resolved fine but is *already* failed — a repeated
    /// `down` without an intervening `up`. Distinct from silent
    /// idempotence so flap-damping logic can count flaps correctly.
    AlreadyFailed {
        /// First endpoint, as written.
        a: String,
        /// Second endpoint, as written.
        b: String,
        /// The resolved link, so callers can still act on it.
        link: LinkId,
    },
}

impl fmt::Display for LinkLookupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkLookupError::UnknownNode { name, nearest } => {
                write!(f, "unknown node {name:?}")?;
                if !nearest.is_empty() {
                    write!(f, " (did you mean {}?)", nearest.join(", "))?;
                }
                Ok(())
            }
            LinkLookupError::NotAdjacent { a, b, candidates } => {
                write!(f, "no link between {a:?} and {b:?}")?;
                if !candidates.is_empty() {
                    write!(f, " ({a} connects to: {})", candidates.join(", "))?;
                }
                Ok(())
            }
            LinkLookupError::AlreadyFailed { a, b, .. } => {
                write!(f, "link between {a:?} and {b:?} is already failed")
            }
        }
    }
}

impl std::error::Error for LinkLookupError {}

/// Levenshtein distance, small-string DP — only used on error paths.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

/// Up to three existing node names within edit distance 2 of `name`,
/// best match first — the "did you mean ...?" suggestion source for any
/// tool resolving operator-typed node names.
pub fn nearest_names(topo: &Topology, name: &str) -> Vec<String> {
    let mut scored: Vec<(usize, &str)> = topo
        .node_ids()
        .map(|n| topo.node(n).name.as_str())
        .filter_map(|candidate| {
            let d = edit_distance(name, candidate);
            (d <= 2).then_some((d, candidate))
        })
        .collect();
    scored.sort();
    scored.into_iter().take(3).map(|(_, n)| n.into()).collect()
}

/// A set of failed links, overlaid on a [`Topology`] without mutating it.
///
/// Routing code consults the failure set when computing reroutes, so a
/// single topology can serve both the pre-failure view (for ELP
/// enumeration) and the post-failure view (for reroute simulation) — the
/// exact situation Tagger is designed around: tags are computed against
/// the *expected* lossless paths, failures then push real traffic off them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FailureSet {
    failed: BTreeSet<LinkId>,
}

impl FailureSet {
    /// Creates an empty failure set (the healthy network).
    pub fn none() -> Self {
        Self::default()
    }

    /// Marks `link` failed. Idempotent; returns `true` if the link was
    /// healthy until now, `false` on a repeated failure — the signal a
    /// flap counter needs.
    pub fn fail(&mut self, link: LinkId) -> bool {
        self.failed.insert(link)
    }

    /// Marks the link between the named nodes as failed.
    ///
    /// # Panics
    /// Panics if either node does not exist or they are not adjacent —
    /// experiment scripts should fail loudly on typos. Re-failing an
    /// already-failed link stays silently idempotent here.
    pub fn fail_between(&mut self, topo: &Topology, a: &str, b: &str) {
        match self.try_fail_between(topo, a, b) {
            Ok(_) | Err(LinkLookupError::AlreadyFailed { .. }) => {}
            Err(e @ LinkLookupError::UnknownNode { .. }) => panic!("{e}"),
            Err(e @ LinkLookupError::NotAdjacent { .. }) => panic!("{e}"),
        }
    }

    /// Non-panicking [`FailureSet::fail_between`]: resolves the link once
    /// and reports typos as errors instead of aborting — the right shape
    /// when the names come from an untrusted source such as a recorded
    /// control-plane event trace. Returns the failed link on success, and
    /// a distinct [`LinkLookupError::AlreadyFailed`] (carrying the
    /// resolved link) when the link was already down, so callers tracking
    /// flaps can tell a state change from a repeat.
    pub fn try_fail_between(
        &mut self,
        topo: &Topology,
        a: &str,
        b: &str,
    ) -> Result<LinkId, LinkLookupError> {
        let link = resolve_link(topo, a, b)?;
        if !self.fail(link) {
            return Err(LinkLookupError::AlreadyFailed {
                a: a.to_string(),
                b: b.to_string(),
                link,
            });
        }
        Ok(link)
    }

    /// Non-panicking restore-by-name, the counterpart of
    /// [`FailureSet::try_fail_between`]. Restoring a link that was never
    /// failed is a no-op, matching [`FailureSet::restore`].
    pub fn try_restore_between(
        &mut self,
        topo: &Topology,
        a: &str,
        b: &str,
    ) -> Result<LinkId, LinkLookupError> {
        let link = resolve_link(topo, a, b)?;
        self.restore(link);
        Ok(link)
    }

    /// Restores `link`. Idempotent; returns `true` if the link was
    /// actually failed, `false` on a redundant restore.
    pub fn restore(&mut self, link: LinkId) -> bool {
        self.failed.remove(&link)
    }

    /// True if `link` is currently failed.
    pub fn is_failed(&self, link: LinkId) -> bool {
        self.failed.contains(&link)
    }

    /// True if the direct link between `a` and `b` is usable (exists and
    /// not failed).
    pub fn link_up(&self, topo: &Topology, a: NodeId, b: NodeId) -> bool {
        topo.link_between(a, b).is_some_and(|l| !self.is_failed(l))
    }

    /// Number of failed links.
    pub fn len(&self) -> usize {
        self.failed.len()
    }

    /// True if no links are failed.
    pub fn is_empty(&self) -> bool {
        self.failed.is_empty()
    }

    /// Iterates over failed links in id order.
    pub fn iter(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.failed.iter().copied()
    }

    /// Surviving neighbors of `node`: like [`Topology::neighbors`] but with
    /// failed links masked out.
    pub fn live_neighbors<'a>(
        &'a self,
        topo: &'a Topology,
        node: NodeId,
    ) -> impl Iterator<Item = (crate::PortId, LinkId, NodeId)> + 'a {
        topo.neighbors(node)
            .filter(move |&(_, l, _)| !self.is_failed(l))
    }
}

/// Resolves the link between two named nodes. Errors carry repair hints:
/// near-miss spellings for unknown names, and the first node's actual
/// switch neighbors when the pair is not adjacent.
pub fn resolve_link(topo: &Topology, a: &str, b: &str) -> Result<LinkId, LinkLookupError> {
    let unknown = |name: &str| LinkLookupError::UnknownNode {
        name: name.to_string(),
        nearest: nearest_names(topo, name),
    };
    let na = topo.node_by_name(a).ok_or_else(|| unknown(a))?;
    let nb = topo.node_by_name(b).ok_or_else(|| unknown(b))?;
    topo.link_between(na, nb)
        .ok_or_else(|| LinkLookupError::NotAdjacent {
            a: a.to_string(),
            b: b.to_string(),
            candidates: topo
                .neighbors(na)
                .filter(|&(_, _, peer)| topo.node(peer).kind == crate::NodeKind::Switch)
                .map(|(_, _, peer)| topo.node(peer).name.clone())
                .collect(),
        })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::ClosConfig;

    #[test]
    fn fail_and_restore_round_trip() {
        let topo = ClosConfig::small().build();
        let mut f = FailureSet::none();
        assert!(f.is_empty());
        f.fail_between(&topo, "L1", "T1");
        assert_eq!(f.len(), 1);
        let l1 = topo.expect_node("L1");
        let t1 = topo.expect_node("T1");
        assert!(!f.link_up(&topo, l1, t1));
        let link = topo.link_between(l1, t1).unwrap();
        f.restore(link);
        assert!(f.link_up(&topo, l1, t1));
    }

    #[test]
    fn live_neighbors_masks_failed_links() {
        let topo = ClosConfig::small().build();
        let mut f = FailureSet::none();
        let l1 = topo.expect_node("L1");
        let before = f.live_neighbors(&topo, l1).count();
        f.fail_between(&topo, "L1", "S1");
        let after = f.live_neighbors(&topo, l1).count();
        assert_eq!(after, before - 1);
    }

    #[test]
    #[should_panic(expected = "no link between")]
    fn fail_between_nonadjacent_panics() {
        let topo = ClosConfig::small().build();
        let mut f = FailureSet::none();
        f.fail_between(&topo, "T1", "S1"); // ToRs do not touch spines
    }

    #[test]
    fn try_fail_between_reports_typos_without_panicking() {
        let topo = ClosConfig::small().build();
        let mut f = FailureSet::none();
        match f.try_fail_between(&topo, "L1", "XX") {
            Err(LinkLookupError::UnknownNode { name, .. }) => assert_eq!(name, "XX"),
            other => panic!("expected UnknownNode, got {other:?}"),
        }
        match f.try_fail_between(&topo, "T1", "S1") {
            Err(LinkLookupError::NotAdjacent { a, b, candidates }) => {
                assert_eq!((a.as_str(), b.as_str()), ("T1", "S1"));
                assert!(
                    candidates.contains(&"L1".to_string()),
                    "T1's leaf neighbors must be suggested: {candidates:?}"
                );
            }
            other => panic!("expected NotAdjacent, got {other:?}"),
        }
        assert!(f.is_empty(), "failed lookups must not fail anything");
        let link = f.try_fail_between(&topo, "L1", "T1").unwrap();
        assert!(f.is_failed(link));
        assert_eq!(f.try_restore_between(&topo, "L1", "T1"), Ok(link));
        assert!(f.is_empty());
    }

    #[test]
    fn refailing_a_failed_link_is_a_distinct_error() {
        let topo = ClosConfig::small().build();
        let mut f = FailureSet::none();
        let link = f.try_fail_between(&topo, "L1", "T1").unwrap();
        match f.try_fail_between(&topo, "L1", "T1") {
            Err(LinkLookupError::AlreadyFailed { a, b, link: l }) => {
                assert_eq!((a.as_str(), b.as_str(), l), ("L1", "T1", link));
            }
            other => panic!("expected AlreadyFailed, got {other:?}"),
        }
        assert_eq!(f.len(), 1, "the repeat must not double-count");
        // The raw primitives report state changes for flap counting.
        assert!(!f.fail(link), "re-fail is not a state change");
        assert!(f.restore(link), "restore of a failed link is");
        assert!(!f.restore(link), "redundant restore is not");
        // fail_between stays silently idempotent for experiment scripts.
        f.fail_between(&topo, "L1", "T1");
        f.fail_between(&topo, "L1", "T1");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn unknown_node_errors_suggest_near_misses() {
        let topo = ClosConfig::small().build();
        let e = resolve_link(&topo, "L11", "T1").unwrap_err();
        let msg = e.to_string();
        assert!(
            msg.contains("L1"),
            "near-miss suggestion missing from {msg:?}"
        );
    }
}
