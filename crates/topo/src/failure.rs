//! Non-destructive link-failure overlays.

use crate::{LinkId, NodeId, Topology};
use std::collections::BTreeSet;

/// A set of failed links, overlaid on a [`Topology`] without mutating it.
///
/// Routing code consults the failure set when computing reroutes, so a
/// single topology can serve both the pre-failure view (for ELP
/// enumeration) and the post-failure view (for reroute simulation) — the
/// exact situation Tagger is designed around: tags are computed against
/// the *expected* lossless paths, failures then push real traffic off them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FailureSet {
    failed: BTreeSet<LinkId>,
}

impl FailureSet {
    /// Creates an empty failure set (the healthy network).
    pub fn none() -> Self {
        Self::default()
    }

    /// Marks `link` failed. Idempotent.
    pub fn fail(&mut self, link: LinkId) {
        self.failed.insert(link);
    }

    /// Marks the link between the named nodes as failed.
    ///
    /// # Panics
    /// Panics if either node does not exist or they are not adjacent —
    /// experiment scripts should fail loudly on typos.
    pub fn fail_between(&mut self, topo: &Topology, a: &str, b: &str) {
        let na = topo.expect_node(a);
        let nb = topo.expect_node(b);
        let link = topo
            .link_between(na, nb)
            .unwrap_or_else(|| panic!("no link between {a} and {b}"));
        self.fail(link);
    }

    /// Restores `link`. Idempotent.
    pub fn restore(&mut self, link: LinkId) {
        self.failed.remove(&link);
    }

    /// True if `link` is currently failed.
    pub fn is_failed(&self, link: LinkId) -> bool {
        self.failed.contains(&link)
    }

    /// True if the direct link between `a` and `b` is usable (exists and
    /// not failed).
    pub fn link_up(&self, topo: &Topology, a: NodeId, b: NodeId) -> bool {
        topo.link_between(a, b).is_some_and(|l| !self.is_failed(l))
    }

    /// Number of failed links.
    pub fn len(&self) -> usize {
        self.failed.len()
    }

    /// True if no links are failed.
    pub fn is_empty(&self) -> bool {
        self.failed.is_empty()
    }

    /// Iterates over failed links in id order.
    pub fn iter(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.failed.iter().copied()
    }

    /// Surviving neighbors of `node`: like [`Topology::neighbors`] but with
    /// failed links masked out.
    pub fn live_neighbors<'a>(
        &'a self,
        topo: &'a Topology,
        node: NodeId,
    ) -> impl Iterator<Item = (crate::PortId, LinkId, NodeId)> + 'a {
        topo.neighbors(node)
            .filter(move |&(_, l, _)| !self.is_failed(l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClosConfig;

    #[test]
    fn fail_and_restore_round_trip() {
        let topo = ClosConfig::small().build();
        let mut f = FailureSet::none();
        assert!(f.is_empty());
        f.fail_between(&topo, "L1", "T1");
        assert_eq!(f.len(), 1);
        let l1 = topo.expect_node("L1");
        let t1 = topo.expect_node("T1");
        assert!(!f.link_up(&topo, l1, t1));
        let link = topo.link_between(l1, t1).unwrap();
        f.restore(link);
        assert!(f.link_up(&topo, l1, t1));
    }

    #[test]
    fn live_neighbors_masks_failed_links() {
        let topo = ClosConfig::small().build();
        let mut f = FailureSet::none();
        let l1 = topo.expect_node("L1");
        let before = f.live_neighbors(&topo, l1).count();
        f.fail_between(&topo, "L1", "S1");
        let after = f.live_neighbors(&topo, l1).count();
        assert_eq!(after, before - 1);
    }

    #[test]
    #[should_panic(expected = "no link between")]
    fn fail_between_nonadjacent_panics() {
        let topo = ClosConfig::small().build();
        let mut f = FailureSet::none();
        f.fail_between(&topo, "T1", "S1"); // ToRs do not touch spines
    }
}
