//! Non-destructive link-failure overlays.

use crate::{LinkId, NodeId, Topology};
use std::collections::BTreeSet;
use std::fmt;

/// Why a named link could not be resolved against a topology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinkLookupError {
    /// No node with this name exists.
    UnknownNode(String),
    /// Both nodes exist but share no link.
    NotAdjacent(String, String),
}

impl fmt::Display for LinkLookupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkLookupError::UnknownNode(name) => write!(f, "unknown node {name:?}"),
            LinkLookupError::NotAdjacent(a, b) => {
                write!(f, "no link between {a:?} and {b:?}")
            }
        }
    }
}

impl std::error::Error for LinkLookupError {}

/// A set of failed links, overlaid on a [`Topology`] without mutating it.
///
/// Routing code consults the failure set when computing reroutes, so a
/// single topology can serve both the pre-failure view (for ELP
/// enumeration) and the post-failure view (for reroute simulation) — the
/// exact situation Tagger is designed around: tags are computed against
/// the *expected* lossless paths, failures then push real traffic off them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FailureSet {
    failed: BTreeSet<LinkId>,
}

impl FailureSet {
    /// Creates an empty failure set (the healthy network).
    pub fn none() -> Self {
        Self::default()
    }

    /// Marks `link` failed. Idempotent.
    pub fn fail(&mut self, link: LinkId) {
        self.failed.insert(link);
    }

    /// Marks the link between the named nodes as failed.
    ///
    /// # Panics
    /// Panics if either node does not exist or they are not adjacent —
    /// experiment scripts should fail loudly on typos.
    pub fn fail_between(&mut self, topo: &Topology, a: &str, b: &str) {
        match self.try_fail_between(topo, a, b) {
            Ok(_) => {}
            Err(LinkLookupError::UnknownNode(name)) => panic!("no node named {name}"),
            Err(LinkLookupError::NotAdjacent(a, b)) => panic!("no link between {a} and {b}"),
        }
    }

    /// Non-panicking [`FailureSet::fail_between`]: resolves the link once
    /// and reports typos as errors instead of aborting — the right shape
    /// when the names come from an untrusted source such as a recorded
    /// control-plane event trace. Returns the failed link on success.
    pub fn try_fail_between(
        &mut self,
        topo: &Topology,
        a: &str,
        b: &str,
    ) -> Result<LinkId, LinkLookupError> {
        let link = resolve_link(topo, a, b)?;
        self.fail(link);
        Ok(link)
    }

    /// Non-panicking restore-by-name, the counterpart of
    /// [`FailureSet::try_fail_between`]. Restoring a link that was never
    /// failed is a no-op, matching [`FailureSet::restore`].
    pub fn try_restore_between(
        &mut self,
        topo: &Topology,
        a: &str,
        b: &str,
    ) -> Result<LinkId, LinkLookupError> {
        let link = resolve_link(topo, a, b)?;
        self.restore(link);
        Ok(link)
    }

    /// Restores `link`. Idempotent.
    pub fn restore(&mut self, link: LinkId) {
        self.failed.remove(&link);
    }

    /// True if `link` is currently failed.
    pub fn is_failed(&self, link: LinkId) -> bool {
        self.failed.contains(&link)
    }

    /// True if the direct link between `a` and `b` is usable (exists and
    /// not failed).
    pub fn link_up(&self, topo: &Topology, a: NodeId, b: NodeId) -> bool {
        topo.link_between(a, b).is_some_and(|l| !self.is_failed(l))
    }

    /// Number of failed links.
    pub fn len(&self) -> usize {
        self.failed.len()
    }

    /// True if no links are failed.
    pub fn is_empty(&self) -> bool {
        self.failed.is_empty()
    }

    /// Iterates over failed links in id order.
    pub fn iter(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.failed.iter().copied()
    }

    /// Surviving neighbors of `node`: like [`Topology::neighbors`] but with
    /// failed links masked out.
    pub fn live_neighbors<'a>(
        &'a self,
        topo: &'a Topology,
        node: NodeId,
    ) -> impl Iterator<Item = (crate::PortId, LinkId, NodeId)> + 'a {
        topo.neighbors(node)
            .filter(move |&(_, l, _)| !self.is_failed(l))
    }
}

/// Resolves the link between two named nodes.
pub fn resolve_link(topo: &Topology, a: &str, b: &str) -> Result<LinkId, LinkLookupError> {
    let na = topo
        .node_by_name(a)
        .ok_or_else(|| LinkLookupError::UnknownNode(a.to_string()))?;
    let nb = topo
        .node_by_name(b)
        .ok_or_else(|| LinkLookupError::UnknownNode(b.to_string()))?;
    topo.link_between(na, nb)
        .ok_or_else(|| LinkLookupError::NotAdjacent(a.to_string(), b.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClosConfig;

    #[test]
    fn fail_and_restore_round_trip() {
        let topo = ClosConfig::small().build();
        let mut f = FailureSet::none();
        assert!(f.is_empty());
        f.fail_between(&topo, "L1", "T1");
        assert_eq!(f.len(), 1);
        let l1 = topo.expect_node("L1");
        let t1 = topo.expect_node("T1");
        assert!(!f.link_up(&topo, l1, t1));
        let link = topo.link_between(l1, t1).unwrap();
        f.restore(link);
        assert!(f.link_up(&topo, l1, t1));
    }

    #[test]
    fn live_neighbors_masks_failed_links() {
        let topo = ClosConfig::small().build();
        let mut f = FailureSet::none();
        let l1 = topo.expect_node("L1");
        let before = f.live_neighbors(&topo, l1).count();
        f.fail_between(&topo, "L1", "S1");
        let after = f.live_neighbors(&topo, l1).count();
        assert_eq!(after, before - 1);
    }

    #[test]
    #[should_panic(expected = "no link between")]
    fn fail_between_nonadjacent_panics() {
        let topo = ClosConfig::small().build();
        let mut f = FailureSet::none();
        f.fail_between(&topo, "T1", "S1"); // ToRs do not touch spines
    }

    #[test]
    fn try_fail_between_reports_typos_without_panicking() {
        let topo = ClosConfig::small().build();
        let mut f = FailureSet::none();
        assert_eq!(
            f.try_fail_between(&topo, "L1", "XX"),
            Err(LinkLookupError::UnknownNode("XX".into()))
        );
        assert_eq!(
            f.try_fail_between(&topo, "T1", "S1"),
            Err(LinkLookupError::NotAdjacent("T1".into(), "S1".into()))
        );
        assert!(f.is_empty(), "failed lookups must not fail anything");
        let link = f.try_fail_between(&topo, "L1", "T1").unwrap();
        assert!(f.is_failed(link));
        assert_eq!(f.try_restore_between(&topo, "L1", "T1"), Ok(link));
        assert!(f.is_empty());
    }
}
