//! Strongly-typed identifiers for nodes, ports and links.
//!
//! All identifiers are small integer newtypes: cheap to copy, ordered and
//! hashable, and safe against mixing (a `PortId` can never be passed where
//! a `NodeId` is expected). Ports are node-local — the pair of a node and
//! one of its ports is a [`GlobalPort`], the unit Tagger's rules and PFC's
//! PAUSE frames operate on.

use std::fmt;

/// Identifier of a node (host or switch) within a [`crate::Topology`].
///
/// Node ids are dense indices assigned in insertion order, so they can be
/// used directly as `Vec` indices by downstream crates.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifier of a port, local to one node.
///
/// Port ids are dense per-node indices. Port 0 is the first port allocated
/// on the node; builders allocate ports in a deterministic order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u16);

/// Identifier of a bidirectional link within a [`crate::Topology`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

/// A node-qualified port: one end of a link, and the granularity at which
/// Tagger's match-action rules and PFC PAUSE frames apply.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalPort {
    /// The node the port belongs to.
    pub node: NodeId,
    /// The node-local port index.
    pub port: PortId,
}

impl NodeId {
    /// Returns the id as a plain index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PortId {
    /// Returns the id as a plain index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// Returns the id as a plain index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl GlobalPort {
    /// Convenience constructor.
    #[inline]
    pub fn new(node: NodeId, port: PortId) -> Self {
        GlobalPort { node, port }
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Debug for GlobalPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.node, self.port)
    }
}

impl fmt::Display for GlobalPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.node, self.port)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId(1) < NodeId(2));
        assert!(PortId(0) < PortId(7));
        assert!(LinkId(3) < LinkId(4));
    }

    #[test]
    fn global_port_orders_by_node_then_port() {
        let a = GlobalPort::new(NodeId(1), PortId(9));
        let b = GlobalPort::new(NodeId(2), PortId(0));
        assert!(a < b);
    }

    #[test]
    fn display_is_compact() {
        let gp = GlobalPort::new(NodeId(3), PortId(2));
        assert_eq!(format!("{gp}"), "n3:p2");
        assert_eq!(format!("{:?}", LinkId(5)), "l5");
    }
}
