//! Clos (leaf-spine) fabric builders.
//!
//! The 3-layer Clos built here matches the structure of the paper's
//! Figure 2: pods of ToR and Leaf switches, with every Leaf wired to every
//! Spine. Up-down (valley-free) routing over this fabric is deadlock-free;
//! deadlocks only appear when failures push packets onto *bounce* paths,
//! which is exactly the scenario Tagger is built for.

use crate::{Layer, NodeId, Topology};

/// Configuration for a 3-layer Clos fabric.
///
/// Structure: `pods` pods, each containing `tors_per_pod` ToR switches and
/// `leaves_per_pod` Leaf switches, fully meshed within the pod. Every Leaf
/// connects to every one of the `spines` Spine switches. Every ToR hosts
/// `hosts_per_tor` servers.
///
/// Naming follows the paper: spines `S1..`, leaves `L1..`, ToRs `T1..`,
/// hosts `H1..`, all 1-indexed in construction order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClosConfig {
    /// Number of pods.
    pub pods: usize,
    /// Leaf switches per pod.
    pub leaves_per_pod: usize,
    /// ToR switches per pod.
    pub tors_per_pod: usize,
    /// Spine switches (each connects to every leaf).
    pub spines: usize,
    /// Hosts attached to each ToR.
    pub hosts_per_tor: usize,
}

impl ClosConfig {
    /// The paper's testbed fabric (Figure 2): 2 spines, 2 pods of 2 leaves
    /// and 2 ToRs each, 4 hosts per ToR — `S1..S2`, `L1..L4`, `T1..T4`,
    /// `H1..H16`.
    pub fn small() -> Self {
        ClosConfig {
            pods: 2,
            leaves_per_pod: 2,
            tors_per_pod: 2,
            spines: 2,
            hosts_per_tor: 4,
        }
    }

    /// A larger fabric for scalability-flavoured tests: 4 pods of 4+4,
    /// 8 spines, 8 hosts per ToR (128 hosts, 40 switches).
    pub fn medium() -> Self {
        ClosConfig {
            pods: 4,
            leaves_per_pod: 4,
            tors_per_pod: 4,
            spines: 8,
            hosts_per_tor: 8,
        }
    }

    /// Total switch count implied by the configuration.
    pub fn num_switches(&self) -> usize {
        self.spines + self.pods * (self.leaves_per_pod + self.tors_per_pod)
    }

    /// Total host count implied by the configuration.
    pub fn num_hosts(&self) -> usize {
        self.pods * self.tors_per_pod * self.hosts_per_tor
    }

    /// Builds the topology.
    ///
    /// Construction order (and therefore `NodeId` order) is: spines, then
    /// per pod: leaves then ToRs, then all hosts. Links are wired spine-leaf
    /// first, then leaf-ToR, then ToR-host.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn build(&self) -> Topology {
        assert!(
            self.pods > 0
                && self.leaves_per_pod > 0
                && self.tors_per_pod > 0
                && self.spines > 0
                && self.hosts_per_tor > 0,
            "all Clos dimensions must be positive"
        );
        let mut t = Topology::new();

        let spines: Vec<NodeId> = (1..=self.spines)
            .map(|i| t.add_switch(format!("S{i}"), Layer::Spine))
            .collect();

        let mut leaves = Vec::new();
        let mut tors = Vec::new();
        for pod in 0..self.pods {
            for j in 0..self.leaves_per_pod {
                let idx = pod * self.leaves_per_pod + j + 1;
                leaves.push(t.add_switch(format!("L{idx}"), Layer::Leaf));
            }
            for j in 0..self.tors_per_pod {
                let idx = pod * self.tors_per_pod + j + 1;
                tors.push(t.add_switch(format!("T{idx}"), Layer::Tor));
            }
        }

        let mut hosts = Vec::new();
        for h in 1..=(self.pods * self.tors_per_pod * self.hosts_per_tor) {
            hosts.push(t.add_host(format!("H{h}")));
        }

        // Spine-leaf full mesh.
        for &leaf in &leaves {
            for &spine in &spines {
                t.connect(leaf, spine);
            }
        }
        // Leaf-ToR full mesh within each pod.
        for pod in 0..self.pods {
            for j in 0..self.tors_per_pod {
                let tor = tors[pod * self.tors_per_pod + j];
                for k in 0..self.leaves_per_pod {
                    let leaf = leaves[pod * self.leaves_per_pod + k];
                    t.connect(tor, leaf);
                }
            }
        }
        // Hosts under ToRs.
        for (hi, &host) in hosts.iter().enumerate() {
            let tor = tors[hi / self.hosts_per_tor];
            t.connect(host, tor);
        }

        debug_assert!(t.check_consistency().is_ok());
        t
    }
}

/// Builds a 2-layer leaf-spine Clos: `tors` ToR switches each wired to all
/// `spines` spine switches, with `hosts_per_tor` hosts per ToR.
///
/// Names: `S1..`, `T1..`, `H1..`.
pub fn clos2(tors: usize, spines: usize, hosts_per_tor: usize) -> Topology {
    assert!(tors > 0 && spines > 0 && hosts_per_tor > 0);
    let mut t = Topology::new();
    let spine_ids: Vec<NodeId> = (1..=spines)
        .map(|i| t.add_switch(format!("S{i}"), Layer::Spine))
        .collect();
    let tor_ids: Vec<NodeId> = (1..=tors)
        .map(|i| t.add_switch(format!("T{i}"), Layer::Tor))
        .collect();
    for &tor in &tor_ids {
        for &spine in &spine_ids {
            t.connect(tor, spine);
        }
    }
    for (i, &tor) in tor_ids.iter().enumerate() {
        for h in 0..hosts_per_tor {
            let host = t.add_host(format!("H{}", i * hosts_per_tor + h + 1));
            t.connect(host, tor);
        }
    }
    debug_assert!(t.check_consistency().is_ok());
    t
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn small_matches_paper_figure2() {
        let c = ClosConfig::small();
        let t = c.build();
        assert_eq!(t.num_switches(), 10); // 2 spines + 4 leaves + 4 ToRs
        assert_eq!(t.num_hosts(), 16);
        // Every leaf connects to every spine.
        for l in 1..=4 {
            let leaf = t.expect_node(&format!("L{l}"));
            for s in 1..=2 {
                let spine = t.expect_node(&format!("S{s}"));
                assert!(t.link_between(leaf, spine).is_some(), "L{l}-S{s} missing");
            }
        }
        // T1 is in pod 1: connects to L1, L2 but not L3, L4.
        let t1 = t.expect_node("T1");
        assert!(t.link_between(t1, t.expect_node("L1")).is_some());
        assert!(t.link_between(t1, t.expect_node("L2")).is_some());
        assert!(t.link_between(t1, t.expect_node("L3")).is_none());
        // T3 is in pod 2: connects to L3, L4.
        let t3 = t.expect_node("T3");
        assert!(t.link_between(t3, t.expect_node("L3")).is_some());
        assert!(t.link_between(t3, t.expect_node("L1")).is_none());
        // H1..H4 under T1, H5..H8 under T2.
        assert_eq!(t.attached_switch(t.expect_node("H1")), Some(t1));
        assert_eq!(
            t.attached_switch(t.expect_node("H5")),
            Some(t.expect_node("T2"))
        );
    }

    #[test]
    fn link_count_is_exact() {
        let c = ClosConfig::small();
        let t = c.build();
        // spine-leaf: 4*2 = 8; leaf-tor: 2 pods * (2*2) = 8; host: 16.
        assert_eq!(t.num_links(), 8 + 8 + 16);
    }

    #[test]
    fn medium_builds_consistent() {
        let t = ClosConfig::medium().build();
        t.check_consistency().unwrap();
        assert_eq!(t.num_switches(), ClosConfig::medium().num_switches());
        assert_eq!(t.num_hosts(), ClosConfig::medium().num_hosts());
    }

    #[test]
    fn clos2_wires_full_mesh() {
        let t = clos2(4, 2, 2);
        assert_eq!(t.num_switches(), 6);
        assert_eq!(t.num_hosts(), 8);
        for i in 1..=4 {
            for s in 1..=2 {
                assert!(t
                    .link_between(
                        t.expect_node(&format!("T{i}")),
                        t.expect_node(&format!("S{s}"))
                    )
                    .is_some());
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_panics() {
        ClosConfig {
            pods: 0,
            ..ClosConfig::small()
        }
        .build();
    }
}
