//! Jellyfish random-graph fabrics (Singla et al., NSDI 2012).
//!
//! Used by the paper's Table 5 scalability study: Tagger needs only a
//! handful of lossless priorities even on unstructured topologies of up to
//! 2000 switches.

use crate::{Layer, NodeId, Topology};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeSet;

/// Configuration for a Jellyfish fabric: a random `network_degree`-regular
/// graph over `switches` switches, with the remaining ports of each switch
/// attached to servers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JellyfishConfig {
    /// Number of switches.
    pub switches: usize,
    /// Ports per switch.
    pub ports_per_switch: usize,
    /// Ports per switch used for switch-switch links. Must be less than
    /// `ports_per_switch`; the rest attach servers. The paper's Table 5
    /// uses half the ports for the network.
    pub network_degree: usize,
    /// RNG seed: construction is fully deterministic given the seed.
    pub seed: u64,
}

impl JellyfishConfig {
    /// Table 5 style configuration: half the ports connect to servers.
    pub fn half_servers(switches: usize, ports_per_switch: usize, seed: u64) -> Self {
        JellyfishConfig {
            switches,
            ports_per_switch,
            network_degree: ports_per_switch / 2,
            seed,
        }
    }

    /// Builds the topology.
    ///
    /// Switches are [`Layer::Flat`] (Jellyfish has no layer structure), so
    /// up-down routing is inapplicable; use shortest-path routing instead.
    ///
    /// The random regular graph is grown by the incremental Jellyfish
    /// procedure: repeatedly join two random non-adjacent switches with
    /// free ports; when no such pair remains but free ports do, break a
    /// random existing link and splice the stuck switch into it. This
    /// terminates with all (or all but one odd-stub) network ports used.
    ///
    /// Names: switches `J1..`, servers `H1..`.
    ///
    /// # Panics
    /// Panics unless `2 ≤ network_degree < ports_per_switch` and
    /// `switches > network_degree`.
    pub fn build(&self) -> Topology {
        assert!(
            self.network_degree >= 2 && self.network_degree < self.ports_per_switch,
            "need 2 <= network_degree < ports_per_switch"
        );
        assert!(
            self.switches > self.network_degree,
            "need more switches than the network degree"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut t = Topology::new();
        let switches: Vec<NodeId> = (1..=self.switches)
            .map(|i| t.add_switch(format!("J{i}"), Layer::Flat))
            .collect();

        // Adjacency as index pairs; free[i] = remaining network ports.
        let n = self.switches;
        let mut adj: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut free: Vec<usize> = vec![self.network_degree; n];
        let key = |a: usize, b: usize| if a < b { (a, b) } else { (b, a) };

        loop {
            // Candidate switches with free ports.
            let open: Vec<usize> = (0..n).filter(|&i| free[i] > 0).collect();
            if open.is_empty() {
                break;
            }
            // Try to find a random non-adjacent pair among open switches.
            let mut joined = false;
            for _ in 0..50 {
                if open.len() < 2 {
                    break;
                }
                let i = open[rng.random_range(0..open.len())];
                let j = open[rng.random_range(0..open.len())];
                if i != j && !adj.contains(&key(i, j)) {
                    adj.insert(key(i, j));
                    free[i] -= 1;
                    free[j] -= 1;
                    joined = true;
                    break;
                }
            }
            if joined {
                continue;
            }
            // Stuck: exhaustively look for any joinable pair first.
            let mut found = None;
            'outer: for (xi, &i) in open.iter().enumerate() {
                for &j in &open[xi + 1..] {
                    if !adj.contains(&key(i, j)) {
                        found = Some((i, j));
                        break 'outer;
                    }
                }
            }
            if let Some((i, j)) = found {
                adj.insert(key(i, j));
                free[i] -= 1;
                free[j] -= 1;
                continue;
            }
            // Genuinely stuck: splice a stuck switch into a random edge.
            let x = open[rng.random_range(0..open.len())];
            if free[x] < 2 {
                // A single odd stub can remain unused; Jellyfish accepts it.
                break;
            }
            let edges: Vec<(usize, usize)> = adj
                .iter()
                .copied()
                .filter(|&(u, v)| u != x && v != x)
                .filter(|&(u, v)| !adj.contains(&key(x, u)) && !adj.contains(&key(x, v)))
                .collect();
            if edges.is_empty() {
                break; // cannot improve further; leave remaining ports free
            }
            let (u, v) = edges[rng.random_range(0..edges.len())];
            adj.remove(&key(u, v));
            adj.insert(key(x, u));
            adj.insert(key(x, v));
            free[x] -= 2;
        }

        for &(i, j) in &adj {
            t.connect(switches[i], switches[j]);
        }

        // Attach servers to the non-network ports.
        let servers_per_switch = self.ports_per_switch - self.network_degree;
        let mut h = 0;
        for &sw in &switches {
            for _ in 0..servers_per_switch {
                h += 1;
                let host = t.add_host(format!("H{h}"));
                t.connect(host, sw);
            }
        }

        debug_assert!(t.check_consistency().is_ok());
        t
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn builds_regular_graph() {
        let cfg = JellyfishConfig::half_servers(20, 8, 7);
        let t = cfg.build();
        assert_eq!(t.num_switches(), 20);
        assert_eq!(t.num_hosts(), 20 * 4);
        // Each switch should have exactly network_degree switch neighbors
        // (allowing at most one switch with a single odd stub free).
        let mut deficient = 0;
        for s in t.switch_ids() {
            let deg = t
                .neighbors(s)
                .filter(|&(_, _, n)| t.node(n).kind == crate::NodeKind::Switch)
                .count();
            assert!(deg <= 4);
            if deg < 4 {
                deficient += 1;
            }
        }
        assert!(deficient <= 1, "{deficient} switches under degree");
    }

    #[test]
    fn deterministic_for_seed() {
        let a = JellyfishConfig::half_servers(30, 8, 42).build();
        let b = JellyfishConfig::half_servers(30, 8, 42).build();
        assert_eq!(a.num_links(), b.num_links());
        for (la, lb) in a.link_ids().zip(b.link_ids()) {
            assert_eq!(a.link(la).a, b.link(lb).a);
            assert_eq!(a.link(la).b, b.link(lb).b);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = JellyfishConfig::half_servers(30, 8, 1).build();
        let b = JellyfishConfig::half_servers(30, 8, 2).build();
        let ea: Vec<_> = a.link_ids().map(|l| (a.link(l).a, a.link(l).b)).collect();
        let eb: Vec<_> = b.link_ids().map(|l| (b.link(l).a, b.link(l).b)).collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn no_duplicate_switch_links() {
        let t = JellyfishConfig::half_servers(25, 6, 3).build();
        let mut seen = BTreeSet::new();
        for l in t.link_ids() {
            let link = t.link(l);
            let a = link.a.node.min(link.b.node);
            let b = link.a.node.max(link.b.node);
            if t.node(a).kind == crate::NodeKind::Switch
                && t.node(b).kind == crate::NodeKind::Switch
            {
                assert!(seen.insert((a, b)), "duplicate link {a}-{b}");
            }
        }
    }

    #[test]
    fn connected_with_high_probability() {
        // Degree-4 random graphs on 50 nodes are connected w.h.p.; check a
        // few seeds to catch construction bugs.
        for seed in 0..5 {
            let t = JellyfishConfig::half_servers(50, 8, seed).build();
            let start = t.switch_ids().next().unwrap();
            let mut seen = BTreeSet::new();
            let mut stack = vec![start];
            while let Some(n) = stack.pop() {
                if !seen.insert(n) {
                    continue;
                }
                for (_, _, m) in t.neighbors(n) {
                    if t.node(m).kind == crate::NodeKind::Switch && !seen.contains(&m) {
                        stack.push(m);
                    }
                }
            }
            assert_eq!(seen.len(), 50, "seed {seed} disconnected");
        }
    }
}
