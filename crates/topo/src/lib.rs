//! # tagger-topo — data-center topology substrate
//!
//! Port-level network topologies for the Tagger reproduction. A
//! [`Topology`] is a multigraph of [`Node`]s (hosts and switches) joined by
//! point-to-point [`Link`]s between specific ports. Ports matter: Tagger's
//! tagging rules are expressed over *(ingress port, tag)* pairs, and PFC
//! PAUSE frames act on individual ports, so the substrate keeps port
//! identities first-class instead of collapsing them into plain edges.
//!
//! Builders are provided for the topologies used in the paper:
//!
//! - [`ClosConfig`] — 2- and 3-layer Clos (leaf-spine) fabrics, including
//!   the 6-server testbed of the paper's Figure 2,
//! - [`fat_tree`] — the canonical k-ary FatTree,
//! - [`bcube`] — BCube(n, k) server-centric fabrics,
//! - [`JellyfishConfig`] — random regular-graph (Jellyfish) fabrics used in
//!   the paper's Table 5 scalability study.
//!
//! Link failures are modelled non-destructively with [`FailureSet`]: a
//! failure set overlays a topology and masks links without mutating the
//! underlying graph, so "before failure" and "after failure" views coexist.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

mod bcube;
mod clos;
mod dot;
mod failure;
mod fattree;
mod ids;
mod jellyfish;
mod spec;
mod topology;

pub use bcube::{bcube, BCubeConfig};
pub use clos::{clos2, ClosConfig};
pub use failure::{nearest_names, resolve_link, FailureSet, LinkLookupError};
pub use fattree::fat_tree;
pub use ids::{GlobalPort, LinkId, NodeId, PortId};
pub use jellyfish::JellyfishConfig;
pub use spec::{SpecError, SpecFile};
pub use topology::{Layer, Link, Node, NodeKind, Topology};
