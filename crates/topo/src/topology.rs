//! The port-level topology multigraph.

use crate::{GlobalPort, LinkId, NodeId, PortId};
use std::collections::BTreeMap;

/// Whether a node is an end host or a packet switch.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum NodeKind {
    /// An end host (server). Sources and sinks traffic; never forwards.
    Host,
    /// A packet switch. Forwards traffic and runs the Tagger pipeline.
    Switch,
}

/// Topological layer of a node, used by up-down (valley-free) routing and
/// by the Clos-specific tagging construction.
///
/// Layers are ordered: `Host < Tor < Leaf < Spine`, and `Level(i)` slots
/// between them for layered topologies that are not Clos (e.g. BCube
/// switch levels). A hop is *up* if it increases the layer rank and *down*
/// if it decreases it.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Layer {
    /// End-host layer (rank 0).
    Host,
    /// Top-of-rack switch layer (rank 1).
    Tor,
    /// Leaf / aggregation switch layer (rank 2).
    Leaf,
    /// Spine / core switch layer (rank 3).
    Spine,
    /// Generic layered rank for non-Clos topologies (rank `1 + i`).
    Level(u8),
    /// No layer information (e.g. Jellyfish switches). Up-down routing is
    /// undefined over unranked nodes.
    Flat,
}

impl Layer {
    /// Numeric rank used to classify hops as up/down. `None` for [`Layer::Flat`].
    pub fn rank(self) -> Option<u8> {
        match self {
            Layer::Host => Some(0),
            Layer::Tor => Some(1),
            Layer::Leaf => Some(2),
            Layer::Spine => Some(3),
            Layer::Level(i) => Some(1 + i),
            Layer::Flat => None,
        }
    }
}

/// A node in the topology: a host or switch with a set of ports.
#[derive(Clone, Debug)]
pub struct Node {
    /// Human-readable name, e.g. `"L3"` or `"H12"`. Unique per topology.
    pub name: String,
    /// Host or switch.
    pub kind: NodeKind,
    /// Layer used by up-down routing; `Flat` if not applicable.
    pub layer: Layer,
    /// For each port (by index), the link attached to it, if any.
    ports: Vec<Option<LinkId>>,
}

impl Node {
    /// Number of ports allocated on this node (wired or not).
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// The link attached to `port`, if the port exists and is wired.
    pub fn link_at(&self, port: PortId) -> Option<LinkId> {
        self.ports.get(port.index()).copied().flatten()
    }
}

/// A full-duplex point-to-point link between two node ports.
#[derive(Clone, Debug)]
pub struct Link {
    /// One endpoint.
    pub a: GlobalPort,
    /// The other endpoint.
    pub b: GlobalPort,
    /// Line rate in bits per second (each direction).
    pub capacity_bps: u64,
    /// One-way propagation delay in nanoseconds.
    pub latency_ns: u64,
}

impl Link {
    /// Given one endpoint's node, returns the endpoint on the *other* node.
    ///
    /// # Panics
    /// Panics if `node` is not an endpoint of this link.
    pub fn opposite(&self, node: NodeId) -> GlobalPort {
        if self.a.node == node {
            self.b
        } else if self.b.node == node {
            self.a
        } else {
            panic!("node {node} is not an endpoint of this link");
        }
    }

    /// The endpoint that sits on `node`.
    ///
    /// # Panics
    /// Panics if `node` is not an endpoint of this link.
    pub fn endpoint_on(&self, node: NodeId) -> GlobalPort {
        if self.a.node == node {
            self.a
        } else if self.b.node == node {
            self.b
        } else {
            panic!("node {node} is not an endpoint of this link");
        }
    }

    /// True if `node` is one of the two endpoints.
    pub fn touches(&self, node: NodeId) -> bool {
        self.a.node == node || self.b.node == node
    }
}

/// Default link capacity used by builders: 40 Gb/s, matching the paper's
/// Arista 7060 / ConnectX-3 Pro testbed.
pub(crate) const DEFAULT_CAPACITY_BPS: u64 = 40_000_000_000;

/// Default one-way link latency used by builders: 1 µs.
pub(crate) const DEFAULT_LATENCY_NS: u64 = 1_000;

/// A port-level multigraph of hosts, switches and point-to-point links.
///
/// Construction is incremental: add nodes with [`Topology::add_node`] (or a
/// convenience wrapper), then wire them with [`Topology::connect`]. Ports
/// are allocated in call order, so builders produce deterministic port
/// numbering — important because tagging rules and TCAM entries are keyed
/// by port.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    by_name: BTreeMap<String, NodeId>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node and returns its id.
    ///
    /// # Panics
    /// Panics if `name` is already taken — builder bugs should fail fast.
    pub fn add_node(&mut self, name: impl Into<String>, kind: NodeKind, layer: Layer) -> NodeId {
        let name = name.into();
        let id = NodeId(self.nodes.len() as u32);
        let prev = self.by_name.insert(name.clone(), id);
        assert!(prev.is_none(), "duplicate node name {name:?}");
        self.nodes.push(Node {
            name,
            kind,
            layer,
            ports: Vec::new(),
        });
        id
    }

    /// Adds a host node.
    pub fn add_host(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(name, NodeKind::Host, Layer::Host)
    }

    /// Adds a switch node at `layer`.
    pub fn add_switch(&mut self, name: impl Into<String>, layer: Layer) -> NodeId {
        self.add_node(name, NodeKind::Switch, layer)
    }

    /// Wires a new link between `a` and `b` with default capacity/latency,
    /// allocating the next free port on each side.
    pub fn connect(&mut self, a: NodeId, b: NodeId) -> LinkId {
        self.connect_with(a, b, DEFAULT_CAPACITY_BPS, DEFAULT_LATENCY_NS)
    }

    /// Wires a new link between `a` and `b` with explicit capacity and
    /// latency, allocating the next free port on each side.
    ///
    /// # Panics
    /// Panics on self-links; parallel links between the same node pair are
    /// allowed (they use distinct ports).
    pub fn connect_with(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity_bps: u64,
        latency_ns: u64,
    ) -> LinkId {
        assert_ne!(a, b, "self-links are not allowed");
        let link = LinkId(self.links.len() as u32);
        let pa = self.alloc_port(a, link);
        let pb = self.alloc_port(b, link);
        self.links.push(Link {
            a: GlobalPort::new(a, pa),
            b: GlobalPort::new(b, pb),
            capacity_bps,
            latency_ns,
        });
        link
    }

    fn alloc_port(&mut self, node: NodeId, link: LinkId) -> PortId {
        let ports = &mut self.nodes[node.index()].ports;
        let id = PortId(ports.len() as u16);
        ports.push(Some(link));
        id
    }

    /// Number of nodes (hosts + switches).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Number of switch nodes.
    pub fn num_switches(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Switch)
            .count()
    }

    /// Number of host nodes.
    pub fn num_hosts(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Host)
            .count()
    }

    /// The node with id `id`.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The link with id `id`.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Looks a node up by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Looks a node up by name, panicking with a useful message if missing.
    ///
    /// Intended for tests and experiment harnesses where the name is known
    /// to exist by construction.
    pub fn expect_node(&self, name: &str) -> NodeId {
        self.node_by_name(name)
            .unwrap_or_else(|| panic!("no node named {name:?}"))
    }

    /// Iterates over all node ids in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterates over all switch node ids in insertion order.
    pub fn switch_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids()
            .filter(|&n| self.node(n).kind == NodeKind::Switch)
    }

    /// Iterates over all host node ids in insertion order.
    pub fn host_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids()
            .filter(|&n| self.node(n).kind == NodeKind::Host)
    }

    /// Iterates over all link ids in insertion order.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len() as u32).map(LinkId)
    }

    /// Iterates over `(port, link, neighbor)` triples for every wired port
    /// of `node`, in port order.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = (PortId, LinkId, NodeId)> + '_ {
        self.nodes[node.index()]
            .ports
            .iter()
            .enumerate()
            .filter_map(move |(i, l)| {
                l.map(|link| {
                    let other = self.links[link.index()].opposite(node);
                    (PortId(i as u16), link, other.node)
                })
            })
    }

    /// The link joining `a` and `b`, if any. For parallel links, returns the
    /// lowest-id one.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.neighbors(a)
            .find(|&(_, _, n)| n == b)
            .map(|(_, l, _)| l)
    }

    /// The port on `a` that leads to `b`, if the nodes are adjacent. For
    /// parallel links, returns the lowest-numbered port.
    pub fn port_towards(&self, a: NodeId, b: NodeId) -> Option<PortId> {
        self.neighbors(a)
            .find(|&(_, _, n)| n == b)
            .map(|(p, _, _)| p)
    }

    /// The node on the far side of `port`, if the port is wired.
    pub fn peer_of(&self, port: GlobalPort) -> Option<GlobalPort> {
        let link = self.node(port.node).link_at(port.port)?;
        Some(self.link(link).opposite(port.node))
    }

    /// True if the hop `from → to` goes up the layer hierarchy.
    ///
    /// Returns `false` (not a panic) for unranked nodes; Jellyfish-style
    /// flat topologies simply have no up/down structure.
    pub fn is_up_hop(&self, from: NodeId, to: NodeId) -> bool {
        match (self.node(from).layer.rank(), self.node(to).layer.rank()) {
            (Some(f), Some(t)) => t > f,
            _ => false,
        }
    }

    /// True if the hop `from → to` goes down the layer hierarchy.
    pub fn is_down_hop(&self, from: NodeId, to: NodeId) -> bool {
        match (self.node(from).layer.rank(), self.node(to).layer.rank()) {
            (Some(f), Some(t)) => t < f,
            _ => false,
        }
    }

    /// The host attached to a ToR switch port, walked the other way: for a
    /// host `h`, returns the switch it is attached to (first wired port).
    pub fn attached_switch(&self, host: NodeId) -> Option<NodeId> {
        debug_assert_eq!(self.node(host).kind, NodeKind::Host);
        self.neighbors(host)
            .map(|(_, _, n)| n)
            .find(|&n| self.node(n).kind == NodeKind::Switch)
    }

    /// Validates internal consistency (ports ↔ links agree). Used by tests
    /// and builders; cheap enough to run after construction.
    pub fn check_consistency(&self) -> Result<(), String> {
        for (i, link) in self.links.iter().enumerate() {
            let id = LinkId(i as u32);
            for gp in [link.a, link.b] {
                let node = self
                    .nodes
                    .get(gp.node.index())
                    .ok_or_else(|| format!("{id}: endpoint node {} out of range", gp.node))?;
                match node.ports.get(gp.port.index()) {
                    Some(Some(l)) if *l == id => {}
                    other => {
                        return Err(format!(
                            "{id}: port {gp} does not point back (found {other:?})"
                        ))
                    }
                }
            }
            if link.a.node == link.b.node {
                return Err(format!("{id}: self-link on {}", link.a.node));
            }
        }
        for (ni, node) in self.nodes.iter().enumerate() {
            for (pi, l) in node.ports.iter().enumerate() {
                if let Some(l) = l {
                    let link = self
                        .links
                        .get(l.index())
                        .ok_or_else(|| format!("n{ni}:p{pi}: link {l} out of range"))?;
                    if !link.touches(NodeId(ni as u32)) {
                        return Err(format!("n{ni}:p{pi}: link {l} does not touch node"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    fn triangle() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_switch("A", Layer::Flat);
        let b = t.add_switch("B", Layer::Flat);
        let c = t.add_switch("C", Layer::Flat);
        t.connect(a, b);
        t.connect(b, c);
        t.connect(c, a);
        (t, a, b, c)
    }

    #[test]
    fn connect_allocates_ports_in_order() {
        let (t, a, b, c) = triangle();
        // A's port 0 goes to B (first connect), port 1 to C (third connect).
        assert_eq!(t.port_towards(a, b), Some(PortId(0)));
        assert_eq!(t.port_towards(a, c), Some(PortId(1)));
        assert_eq!(t.port_towards(b, a), Some(PortId(0)));
        assert_eq!(t.port_towards(b, c), Some(PortId(1)));
        t.check_consistency().unwrap();
    }

    #[test]
    fn neighbors_lists_all_adjacent() {
        let (t, a, b, c) = triangle();
        let ns: Vec<NodeId> = t.neighbors(a).map(|(_, _, n)| n).collect();
        assert_eq!(ns, vec![b, c]);
    }

    #[test]
    fn peer_of_round_trips() {
        let (t, a, b, _) = triangle();
        let pa = GlobalPort::new(a, t.port_towards(a, b).unwrap());
        let pb = t.peer_of(pa).unwrap();
        assert_eq!(pb.node, b);
        assert_eq!(t.peer_of(pb).unwrap(), pa);
    }

    #[test]
    fn up_down_hops_follow_layer_ranks() {
        let mut t = Topology::new();
        let h = t.add_host("H1");
        let tor = t.add_switch("T1", Layer::Tor);
        let leaf = t.add_switch("L1", Layer::Leaf);
        let spine = t.add_switch("S1", Layer::Spine);
        t.connect(h, tor);
        t.connect(tor, leaf);
        t.connect(leaf, spine);
        assert!(t.is_up_hop(h, tor));
        assert!(t.is_up_hop(tor, leaf));
        assert!(t.is_up_hop(leaf, spine));
        assert!(t.is_down_hop(spine, leaf));
        assert!(!t.is_up_hop(spine, leaf));
        // Flat nodes are never up/down.
        let f = t.add_switch("F", Layer::Flat);
        t.connect(f, spine);
        assert!(!t.is_up_hop(f, spine));
        assert!(!t.is_down_hop(f, spine));
    }

    #[test]
    fn parallel_links_use_distinct_ports() {
        let mut t = Topology::new();
        let a = t.add_switch("A", Layer::Flat);
        let b = t.add_switch("B", Layer::Flat);
        let l0 = t.connect(a, b);
        let l1 = t.connect(a, b);
        assert_ne!(l0, l1);
        assert_eq!(t.node(a).num_ports(), 2);
        t.check_consistency().unwrap();
        // link_between returns the lowest-id link.
        assert_eq!(t.link_between(a, b), Some(l0));
    }

    #[test]
    #[should_panic(expected = "duplicate node name")]
    fn duplicate_names_panic() {
        let mut t = Topology::new();
        t.add_host("H1");
        t.add_host("H1");
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_links_panic() {
        let mut t = Topology::new();
        let a = t.add_switch("A", Layer::Flat);
        t.connect(a, a);
    }

    #[test]
    fn attached_switch_finds_tor() {
        let mut t = Topology::new();
        let h = t.add_host("H1");
        let tor = t.add_switch("T1", Layer::Tor);
        t.connect(h, tor);
        assert_eq!(t.attached_switch(h), Some(tor));
    }

    #[test]
    fn expect_node_finds_by_name() {
        let (t, a, _, _) = triangle();
        assert_eq!(t.expect_node("A"), a);
        assert_eq!(t.node_by_name("missing"), None);
    }
}
