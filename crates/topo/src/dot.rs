//! Graphviz export for debugging and documentation.

use crate::{NodeKind, Topology};
use std::fmt::Write as _;

impl Topology {
    /// Renders the topology in Graphviz `dot` format.
    ///
    /// Hosts are boxes, switches ellipses; nodes carry their names and
    /// links are unlabelled edges. Useful for eyeballing small fabrics:
    ///
    /// ```
    /// use tagger_topo::ClosConfig;
    /// let dot = ClosConfig::small().build().to_dot();
    /// assert!(dot.starts_with("graph topology {"));
    /// assert!(dot.contains("\"L1\" -- \"S1\""));
    /// ```
    pub fn to_dot(&self) -> String {
        self.to_dot_highlighted(&[])
    }

    /// Like [`Topology::to_dot`], but rendering the given node pairs —
    /// typically the hops of a cyclic buffer dependency found by an
    /// auditor — as bold red edges, with the nodes they touch filled
    /// red too. Pairs are matched against links in either direction;
    /// pairs that name no link are ignored.
    pub fn to_dot_highlighted(&self, hot: &[(crate::NodeId, crate::NodeId)]) -> String {
        let is_hot = |a: crate::NodeId, b: crate::NodeId| {
            hot.iter()
                .any(|&(x, y)| (x, y) == (a, b) || (x, y) == (b, a))
        };
        let mut out = String::from("graph topology {\n");
        for id in self.node_ids() {
            let n = self.node(id);
            let shape = match n.kind {
                NodeKind::Host => "box",
                NodeKind::Switch => "ellipse",
            };
            let on_cycle = hot.iter().any(|&(x, y)| x == id || y == id);
            if on_cycle {
                let _ = writeln!(
                    out,
                    "  \"{}\" [shape={shape}, style=filled, fillcolor=\"#ffcccc\", color=red];",
                    n.name
                );
            } else {
                let _ = writeln!(out, "  \"{}\" [shape={shape}];", n.name);
            }
        }
        for l in self.link_ids() {
            let link = self.link(l);
            let (a, b) = (link.a.node, link.b.node);
            if is_hot(a, b) {
                let _ = writeln!(
                    out,
                    "  \"{}\" -- \"{}\" [color=red, penwidth=2.5];",
                    self.node(a).name,
                    self.node(b).name
                );
            } else {
                let _ = writeln!(
                    out,
                    "  \"{}\" -- \"{}\";",
                    self.node(a).name,
                    self.node(b).name
                );
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use crate::ClosConfig;

    #[test]
    fn dot_lists_every_node_and_link() {
        let topo = ClosConfig::small().build();
        let dot = topo.to_dot();
        assert_eq!(dot.matches(" -- ").count(), topo.num_links());
        assert_eq!(dot.matches("[shape=").count(), topo.num_nodes());
    }

    #[test]
    fn highlighted_dot_marks_exactly_the_cycle() {
        let topo = ClosConfig::small().build();
        let cycle = [
            (topo.expect_node("L1"), topo.expect_node("S1")),
            (topo.expect_node("S1"), topo.expect_node("L3")),
            (topo.expect_node("L3"), topo.expect_node("S2")),
            // Deliberately reversed relative to the stored link to check
            // direction-insensitive matching.
            (topo.expect_node("L1"), topo.expect_node("S2")),
        ];
        let dot = topo.to_dot_highlighted(&cycle);
        assert_eq!(dot.matches("penwidth").count(), 4);
        assert_eq!(dot.matches("fillcolor").count(), 4, "L1, S1, L3, S2");
        assert_eq!(dot.matches(" -- ").count(), topo.num_links());
        // No highlight requested = the plain renderer.
        assert_eq!(topo.to_dot_highlighted(&[]), topo.to_dot());
    }
}
