//! Graphviz export for debugging and documentation.

use crate::{NodeKind, Topology};
use std::fmt::Write as _;

impl Topology {
    /// Renders the topology in Graphviz `dot` format.
    ///
    /// Hosts are boxes, switches ellipses; nodes carry their names and
    /// links are unlabelled edges. Useful for eyeballing small fabrics:
    ///
    /// ```
    /// use tagger_topo::ClosConfig;
    /// let dot = ClosConfig::small().build().to_dot();
    /// assert!(dot.starts_with("graph topology {"));
    /// assert!(dot.contains("\"L1\" -- \"S1\""));
    /// ```
    pub fn to_dot(&self) -> String {
        let mut out = String::from("graph topology {\n");
        for id in self.node_ids() {
            let n = self.node(id);
            let shape = match n.kind {
                NodeKind::Host => "box",
                NodeKind::Switch => "ellipse",
            };
            let _ = writeln!(out, "  \"{}\" [shape={shape}];", n.name);
        }
        for l in self.link_ids() {
            let link = self.link(l);
            let _ = writeln!(
                out,
                "  \"{}\" -- \"{}\";",
                self.node(link.a.node).name,
                self.node(link.b.node).name
            );
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::ClosConfig;

    #[test]
    fn dot_lists_every_node_and_link() {
        let topo = ClosConfig::small().build();
        let dot = topo.to_dot();
        assert_eq!(dot.matches(" -- ").count(), topo.num_links());
        assert_eq!(dot.matches("[shape=").count(), topo.num_nodes());
    }
}
