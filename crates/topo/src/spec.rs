//! A plain-text topology interchange format.
//!
//! Lets operators feed their own fabrics to the planning tools without
//! pulling in a serialization stack. One declaration per line:
//!
//! ```text
//! # comments and blank lines are ignored
//! node <name> host
//! node <name> switch <tor|leaf|spine|flat|level:N>
//! link <name> <name> [capacity_bps] [latency_ns]
//! priorities <N>          # declared lossless-priority budget (optional)
//! ```
//!
//! Ports are allocated in link order, exactly like the programmatic
//! builders, so a spec round-trips to an identical topology.
//!
//! Errors carry full source coordinates (line, column, token length)
//! plus a fix-it hint where one is known — unknown node names get
//! nearest-name did-you-mean suggestions — so downstream tools
//! (`tagger-plan custom`, `tagger-lint`) can render compiler-style
//! diagnostics pointing at the offending token.

use crate::{nearest_names, Layer, NodeKind, Topology};
use std::fmt;

/// Parse errors, with 1-based line/column coordinates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    /// Line the error occurred on (1-based; 0 = whole file).
    pub line: usize,
    /// Column of the offending token (1-based; 1 when unknown).
    pub col: usize,
    /// Length of the offending token in characters (0 when unknown).
    pub len: usize,
    /// What went wrong.
    pub message: String,
    /// A fix-it suggestion, when one is known (did-you-mean for node
    /// names, the accepted grammar for bad directives).
    pub hint: Option<String>,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.col > 1 {
            write!(f, "line {}:{}: {}", self.line, self.col, self.message)?;
        } else {
            write!(f, "line {}: {}", self.line, self.message)?;
        }
        if let Some(hint) = &self.hint {
            write!(f, " ({hint})")?;
        }
        Ok(())
    }
}

impl std::error::Error for SpecError {}

/// The 1-based character column of the `idx`-th whitespace-separated
/// token of `raw`, with its character length — mirrors the tokenizer
/// the parser splits with, so coordinates always land on the token.
fn token_span(raw: &str, idx: usize) -> (usize, usize) {
    let mut in_word = false;
    let mut word = 0usize;
    let mut start = 1usize;
    let mut len = 0usize;
    for (i, c) in raw.chars().enumerate() {
        if c.is_whitespace() {
            if in_word {
                if word == idx + 1 {
                    return (start, len);
                }
                in_word = false;
            }
        } else {
            if !in_word {
                in_word = true;
                word += 1;
                start = i + 1;
                len = 0;
            }
            len += 1;
        }
    }
    if in_word && word == idx + 1 {
        return (start, len);
    }
    (1, 0)
}

fn err(line: usize, message: impl Into<String>) -> SpecError {
    SpecError {
        line,
        col: 1,
        len: 0,
        message: message.into(),
        hint: None,
    }
}

fn err_at(raw: &str, line: usize, field: usize, message: impl Into<String>) -> SpecError {
    let (col, len) = token_span(raw, field);
    SpecError {
        line,
        col,
        len,
        message: message.into(),
        hint: None,
    }
}

fn with_hint(mut e: SpecError, hint: impl Into<String>) -> SpecError {
    e.hint = Some(hint.into());
    e
}

fn unknown_node_err(
    topo: &Topology,
    raw: &str,
    line: usize,
    field: usize,
    name: &str,
) -> SpecError {
    let e = err_at(raw, line, field, format!("unknown node {name:?}"));
    let nearest = nearest_names(topo, name);
    if nearest.is_empty() {
        with_hint(e, "declare the node with a `node` line before linking it")
    } else {
        with_hint(e, format!("did you mean {}?", nearest.join(", ")))
    }
}

fn layer_to_text(layer: Layer) -> String {
    match layer {
        Layer::Host => "host".into(),
        Layer::Tor => "tor".into(),
        Layer::Leaf => "leaf".into(),
        Layer::Spine => "spine".into(),
        Layer::Level(n) => format!("level:{n}"),
        Layer::Flat => "flat".into(),
    }
}

fn layer_from_text(s: &str, raw: &str, line: usize) -> Result<Layer, SpecError> {
    match s {
        "tor" => Ok(Layer::Tor),
        "leaf" => Ok(Layer::Leaf),
        "spine" => Ok(Layer::Spine),
        "flat" => Ok(Layer::Flat),
        other => {
            if let Some(n) = other.strip_prefix("level:") {
                n.parse::<u8>()
                    .map(Layer::Level)
                    .map_err(|_| err_at(raw, line, 3, format!("bad level in {other:?}")))
            } else {
                Err(with_hint(
                    err_at(raw, line, 3, format!("unknown layer {other:?}")),
                    "layers: tor, leaf, spine, flat, level:N",
                ))
            }
        }
    }
}

/// A parsed spec file: the topology plus the declarations that describe
/// the deployment rather than the wiring.
#[derive(Clone, Debug)]
pub struct SpecFile {
    /// The fabric.
    pub topo: Topology,
    /// Declared lossless-priority budget (`priorities N`), if any — the
    /// hardware ceiling the feasibility oracle decides against.
    pub priorities: Option<u16>,
    /// Line of the `priorities` declaration (0 when undeclared).
    pub priorities_line: usize,
    /// Source line of each `link` declaration, in link-id order — lets
    /// diagnostics about a dependency cycle span the links that close it.
    pub link_lines: Vec<usize>,
}

impl Topology {
    /// Parses the plain-text topology format (`node ... host`,
    /// `node ... switch <layer>`, `link <a> <b> [capacity] [latency]`;
    /// `#` comments), discarding deployment declarations. See
    /// [`Topology::parse_spec`] for the full result.
    pub fn from_spec_text(text: &str) -> Result<Topology, SpecError> {
        Ok(Topology::parse_spec(text)?.topo)
    }

    /// Parses the plain-text topology format, keeping deployment
    /// declarations (`priorities N`) and per-link source lines.
    pub fn parse_spec(text: &str) -> Result<SpecFile, SpecError> {
        let mut topo = Topology::new();
        let mut priorities: Option<u16> = None;
        let mut priorities_line = 0usize;
        let mut link_lines = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            // Strip trailing comments, then whitespace.
            let trimmed = raw.split('#').next().unwrap_or("").trim();
            if trimmed.is_empty() {
                continue;
            }
            let fields: Vec<&str> = trimmed.split_whitespace().collect();
            match fields[0] {
                "node" => match fields.as_slice() {
                    ["node", name, "host"] => {
                        if topo.node_by_name(name).is_some() {
                            return Err(err_at(raw, line, 1, format!("duplicate node {name:?}")));
                        }
                        topo.add_host(*name);
                    }
                    ["node", name, "switch", layer] => {
                        if topo.node_by_name(name).is_some() {
                            return Err(err_at(raw, line, 1, format!("duplicate node {name:?}")));
                        }
                        topo.add_switch(*name, layer_from_text(layer, raw, line)?);
                    }
                    _ => {
                        return Err(with_hint(
                            err_at(raw, line, 0, "malformed node declaration"),
                            "write `node <name> host` or `node <name> switch <layer>`",
                        ))
                    }
                },
                "link" => {
                    if fields.len() < 3 || fields.len() > 5 {
                        return Err(with_hint(
                            err_at(raw, line, 0, "malformed link declaration"),
                            "write `link <a> <b> [capacity_bps] [latency_ns]`",
                        ));
                    }
                    let a = topo
                        .node_by_name(fields[1])
                        .ok_or_else(|| unknown_node_err(&topo, raw, line, 1, fields[1]))?;
                    let b = topo
                        .node_by_name(fields[2])
                        .ok_or_else(|| unknown_node_err(&topo, raw, line, 2, fields[2]))?;
                    if a == b {
                        return Err(err_at(raw, line, 2, "self-links are not allowed"));
                    }
                    let capacity = match fields.get(3) {
                        Some(c) => c
                            .parse()
                            .map_err(|_| err_at(raw, line, 3, format!("bad capacity {c:?}")))?,
                        None => crate::topology::DEFAULT_CAPACITY_BPS,
                    };
                    let latency = match fields.get(4) {
                        Some(l) => l
                            .parse()
                            .map_err(|_| err_at(raw, line, 4, format!("bad latency {l:?}")))?,
                        None => crate::topology::DEFAULT_LATENCY_NS,
                    };
                    topo.connect_with(a, b, capacity, latency);
                    link_lines.push(line);
                }
                "priorities" => {
                    if priorities.is_some() {
                        return Err(with_hint(
                            err_at(raw, line, 0, "duplicate `priorities` declaration"),
                            format!("first declared on line {priorities_line}"),
                        ));
                    }
                    let n = match fields.get(1) {
                        Some(v) => v.parse::<u16>().ok().filter(|&n| (1..=64).contains(&n)),
                        None => None,
                    };
                    match n {
                        Some(n) => {
                            priorities = Some(n);
                            priorities_line = line;
                        }
                        None => {
                            return Err(with_hint(
                                err_at(raw, line, 1, "bad priority budget"),
                                "write `priorities <N>` with N in 1..=64",
                            ))
                        }
                    }
                }
                other => {
                    return Err(with_hint(
                        err_at(raw, line, 0, format!("unknown directive {other:?}")),
                        "directives: node, link, priorities",
                    ))
                }
            }
        }
        topo.check_consistency()
            .map_err(|m| err(0, format!("inconsistent topology: {m}")))?;
        Ok(SpecFile {
            topo,
            priorities,
            priorities_line,
            link_lines,
        })
    }

    /// Renders the topology in the text format, suitable for
    /// [`Topology::from_spec_text`]. Nodes come first (insertion order),
    /// then links (id order), so the round trip reproduces identical
    /// node ids and port numbering. Deployment declarations
    /// (`priorities`) are not part of the wiring and are not emitted.
    pub fn to_spec_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for id in self.node_ids() {
            let n = self.node(id);
            match n.kind {
                NodeKind::Host => {
                    let _ = writeln!(out, "node {} host", n.name);
                }
                NodeKind::Switch => {
                    let _ = writeln!(out, "node {} switch {}", n.name, layer_to_text(n.layer));
                }
            }
        }
        for l in self.link_ids() {
            let link = self.link(l);
            let _ = writeln!(
                out,
                "link {} {} {} {}",
                self.node(link.a.node).name,
                self.node(link.b.node).name,
                link.capacity_bps,
                link.latency_ns
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::ClosConfig;

    #[test]
    fn round_trip_preserves_everything() {
        let orig = ClosConfig::small().build();
        let text = orig.to_spec_text();
        let parsed = Topology::from_spec_text(&text).unwrap();
        assert_eq!(parsed.num_nodes(), orig.num_nodes());
        assert_eq!(parsed.num_links(), orig.num_links());
        for id in orig.node_ids() {
            let a = orig.node(id);
            let b = parsed.node(id);
            assert_eq!(a.name, b.name);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.layer, b.layer);
            assert_eq!(a.num_ports(), b.num_ports());
        }
        for l in orig.link_ids() {
            assert_eq!(orig.link(l).a, parsed.link(l).a);
            assert_eq!(orig.link(l).b, parsed.link(l).b);
            assert_eq!(orig.link(l).capacity_bps, parsed.link(l).capacity_bps);
        }
    }

    #[test]
    fn parses_minimal_spec_with_defaults() {
        let text = "
            # tiny fabric
            node S switch spine
            node T switch tor
            node H host

            link T S
            link H T 10000000000 500
        ";
        let topo = Topology::from_spec_text(text).unwrap();
        assert_eq!(topo.num_switches(), 2);
        assert_eq!(topo.num_hosts(), 1);
        let l = topo
            .link_between(topo.expect_node("H"), topo.expect_node("T"))
            .unwrap();
        assert_eq!(topo.link(l).capacity_bps, 10_000_000_000);
        assert_eq!(topo.link(l).latency_ns, 500);
        let l0 = topo
            .link_between(topo.expect_node("T"), topo.expect_node("S"))
            .unwrap();
        assert_eq!(topo.link(l0).capacity_bps, 40_000_000_000);
    }

    #[test]
    fn inline_comments_are_stripped() {
        let text = "node A host # the server\nnode B switch tor\nlink A B # access";
        let topo = Topology::from_spec_text(text).unwrap();
        assert_eq!(topo.num_nodes(), 2);
        assert_eq!(topo.num_links(), 1);
    }

    #[test]
    fn level_layers_round_trip() {
        let text = "node B switch level:2\nnode H host\nlink H B";
        let topo = Topology::from_spec_text(text).unwrap();
        assert_eq!(topo.node(topo.expect_node("B")).layer, Layer::Level(2));
        let again = Topology::from_spec_text(&topo.to_spec_text()).unwrap();
        assert_eq!(again.node(again.expect_node("B")).layer, Layer::Level(2));
    }

    #[test]
    fn good_errors() {
        for (text, needle) in [
            ("node A switch nowhere", "unknown layer"),
            ("link A B", "unknown node"),
            ("node A host\nnode A host", "duplicate node"),
            ("frobnicate", "unknown directive"),
            ("node A host\nlink A A", "self-links"),
            ("node A host\nnode B host\nlink A B pig", "bad capacity"),
            ("priorities 0", "bad priority budget"),
            ("priorities 2\npriorities 3", "duplicate `priorities`"),
        ] {
            let e = Topology::from_spec_text(text).unwrap_err();
            assert!(
                e.to_string().contains(needle),
                "{text:?}: expected {needle:?} in {e}"
            );
        }
    }

    #[test]
    fn errors_carry_token_coordinates() {
        // The bad layer is the 4th token on line 2; columns are 1-based.
        let e = Topology::from_spec_text("node A host\nnode B switch nowhere\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.col, 15);
        assert_eq!(e.len, "nowhere".len());
        // Unknown link endpoint: the 2nd token.
        let e = Topology::from_spec_text("node A host\nlink A Bx\n").unwrap_err();
        assert_eq!((e.line, e.col, e.len), (2, 8, 2));
        // Bad capacity: the 4th token.
        let e = Topology::from_spec_text("node A host\nnode B host\nlink A B pig\n").unwrap_err();
        assert_eq!((e.line, e.col, e.len), (3, 10, 3));
    }

    #[test]
    fn unknown_node_gets_did_you_mean_hint() {
        let e = Topology::from_spec_text(
            "node Spine1 switch spine\nnode Tor1 switch tor\nlink Tor1 Spina1\n",
        )
        .unwrap_err();
        assert!(e.message.contains("unknown node"), "{e}");
        let hint = e.hint.unwrap();
        assert!(hint.contains("Spine1"), "hint was {hint:?}");
    }

    #[test]
    fn priorities_declaration_is_parsed_with_its_line() {
        let spec = Topology::parse_spec(
            "# ring\nnode A host\nnode B switch flat\npriorities 2\nlink A B\n",
        )
        .unwrap();
        assert_eq!(spec.priorities, Some(2));
        assert_eq!(spec.priorities_line, 4);
        assert_eq!(spec.link_lines, vec![5]);
        // from_spec_text ignores the declaration but still accepts it.
        let topo = Topology::from_spec_text("node A host\nnode B switch flat\nlink A B\n").unwrap();
        assert_eq!(topo.num_links(), 1);
    }
}
