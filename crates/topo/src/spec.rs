//! A plain-text topology interchange format.
//!
//! Lets operators feed their own fabrics to the planning tools without
//! pulling in a serialization stack. One declaration per line:
//!
//! ```text
//! # comments and blank lines are ignored
//! node <name> host
//! node <name> switch <tor|leaf|spine|flat|level:N>
//! link <name> <name> [capacity_bps] [latency_ns]
//! ```
//!
//! Ports are allocated in link order, exactly like the programmatic
//! builders, so a spec round-trips to an identical topology.

use crate::{Layer, NodeKind, Topology};
use std::fmt;

/// Parse errors, with 1-based line numbers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    /// Line the error occurred on (1-based).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SpecError {}

fn err(line: usize, message: impl Into<String>) -> SpecError {
    SpecError {
        line,
        message: message.into(),
    }
}

fn layer_to_text(layer: Layer) -> String {
    match layer {
        Layer::Host => "host".into(),
        Layer::Tor => "tor".into(),
        Layer::Leaf => "leaf".into(),
        Layer::Spine => "spine".into(),
        Layer::Level(n) => format!("level:{n}"),
        Layer::Flat => "flat".into(),
    }
}

fn layer_from_text(s: &str, line: usize) -> Result<Layer, SpecError> {
    match s {
        "tor" => Ok(Layer::Tor),
        "leaf" => Ok(Layer::Leaf),
        "spine" => Ok(Layer::Spine),
        "flat" => Ok(Layer::Flat),
        other => {
            if let Some(n) = other.strip_prefix("level:") {
                n.parse::<u8>()
                    .map(Layer::Level)
                    .map_err(|_| err(line, format!("bad level in {other:?}")))
            } else {
                Err(err(
                    line,
                    format!("unknown layer {other:?} (tor|leaf|spine|flat|level:N)"),
                ))
            }
        }
    }
}

impl Topology {
    /// Parses the plain-text topology format (`node ... host`,
    /// `node ... switch <layer>`, `link <a> <b> [capacity] [latency]`;
    /// `#` comments).
    pub fn from_spec_text(text: &str) -> Result<Topology, SpecError> {
        let mut topo = Topology::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            // Strip trailing comments, then whitespace.
            let trimmed = raw.split('#').next().unwrap_or("").trim();
            if trimmed.is_empty() {
                continue;
            }
            let fields: Vec<&str> = trimmed.split_whitespace().collect();
            match fields[0] {
                "node" => match fields.as_slice() {
                    ["node", name, "host"] => {
                        if topo.node_by_name(name).is_some() {
                            return Err(err(line, format!("duplicate node {name:?}")));
                        }
                        topo.add_host(*name);
                    }
                    ["node", name, "switch", layer] => {
                        if topo.node_by_name(name).is_some() {
                            return Err(err(line, format!("duplicate node {name:?}")));
                        }
                        topo.add_switch(*name, layer_from_text(layer, line)?);
                    }
                    _ => {
                        return Err(err(
                            line,
                            "expected `node <name> host` or `node <name> switch <layer>`",
                        ))
                    }
                },
                "link" => {
                    if fields.len() < 3 || fields.len() > 5 {
                        return Err(err(
                            line,
                            "expected `link <a> <b> [capacity_bps] [latency_ns]`",
                        ));
                    }
                    let a = topo
                        .node_by_name(fields[1])
                        .ok_or_else(|| err(line, format!("unknown node {:?}", fields[1])))?;
                    let b = topo
                        .node_by_name(fields[2])
                        .ok_or_else(|| err(line, format!("unknown node {:?}", fields[2])))?;
                    if a == b {
                        return Err(err(line, "self-links are not allowed"));
                    }
                    let capacity = match fields.get(3) {
                        Some(c) => c
                            .parse()
                            .map_err(|_| err(line, format!("bad capacity {c:?}")))?,
                        None => crate::topology::DEFAULT_CAPACITY_BPS,
                    };
                    let latency = match fields.get(4) {
                        Some(l) => l
                            .parse()
                            .map_err(|_| err(line, format!("bad latency {l:?}")))?,
                        None => crate::topology::DEFAULT_LATENCY_NS,
                    };
                    topo.connect_with(a, b, capacity, latency);
                }
                other => return Err(err(line, format!("unknown directive {other:?}"))),
            }
        }
        topo.check_consistency()
            .map_err(|m| err(0, format!("inconsistent topology: {m}")))?;
        Ok(topo)
    }

    /// Renders the topology in the text format, suitable for
    /// [`Topology::from_spec_text`]. Nodes come first (insertion order),
    /// then links (id order), so the round trip reproduces identical
    /// node ids and port numbering.
    pub fn to_spec_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for id in self.node_ids() {
            let n = self.node(id);
            match n.kind {
                NodeKind::Host => {
                    let _ = writeln!(out, "node {} host", n.name);
                }
                NodeKind::Switch => {
                    let _ = writeln!(out, "node {} switch {}", n.name, layer_to_text(n.layer));
                }
            }
        }
        for l in self.link_ids() {
            let link = self.link(l);
            let _ = writeln!(
                out,
                "link {} {} {} {}",
                self.node(link.a.node).name,
                self.node(link.b.node).name,
                link.capacity_bps,
                link.latency_ns
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::ClosConfig;

    #[test]
    fn round_trip_preserves_everything() {
        let orig = ClosConfig::small().build();
        let text = orig.to_spec_text();
        let parsed = Topology::from_spec_text(&text).unwrap();
        assert_eq!(parsed.num_nodes(), orig.num_nodes());
        assert_eq!(parsed.num_links(), orig.num_links());
        for id in orig.node_ids() {
            let a = orig.node(id);
            let b = parsed.node(id);
            assert_eq!(a.name, b.name);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.layer, b.layer);
            assert_eq!(a.num_ports(), b.num_ports());
        }
        for l in orig.link_ids() {
            assert_eq!(orig.link(l).a, parsed.link(l).a);
            assert_eq!(orig.link(l).b, parsed.link(l).b);
            assert_eq!(orig.link(l).capacity_bps, parsed.link(l).capacity_bps);
        }
    }

    #[test]
    fn parses_minimal_spec_with_defaults() {
        let text = "
            # tiny fabric
            node S switch spine
            node T switch tor
            node H host

            link T S
            link H T 10000000000 500
        ";
        let topo = Topology::from_spec_text(text).unwrap();
        assert_eq!(topo.num_switches(), 2);
        assert_eq!(topo.num_hosts(), 1);
        let l = topo
            .link_between(topo.expect_node("H"), topo.expect_node("T"))
            .unwrap();
        assert_eq!(topo.link(l).capacity_bps, 10_000_000_000);
        assert_eq!(topo.link(l).latency_ns, 500);
        let l0 = topo
            .link_between(topo.expect_node("T"), topo.expect_node("S"))
            .unwrap();
        assert_eq!(topo.link(l0).capacity_bps, 40_000_000_000);
    }

    #[test]
    fn inline_comments_are_stripped() {
        let text = "node A host # the server\nnode B switch tor\nlink A B # access";
        let topo = Topology::from_spec_text(text).unwrap();
        assert_eq!(topo.num_nodes(), 2);
        assert_eq!(topo.num_links(), 1);
    }

    #[test]
    fn level_layers_round_trip() {
        let text = "node B switch level:2\nnode H host\nlink H B";
        let topo = Topology::from_spec_text(text).unwrap();
        assert_eq!(topo.node(topo.expect_node("B")).layer, Layer::Level(2));
        let again = Topology::from_spec_text(&topo.to_spec_text()).unwrap();
        assert_eq!(again.node(again.expect_node("B")).layer, Layer::Level(2));
    }

    #[test]
    fn good_errors() {
        for (text, needle) in [
            ("node A switch nowhere", "unknown layer"),
            ("link A B", "unknown node"),
            ("node A host\nnode A host", "duplicate node"),
            ("frobnicate", "unknown directive"),
            ("node A host\nlink A A", "self-links"),
            ("node A host\nnode B host\nlink A B pig", "bad capacity"),
        ] {
            let e = Topology::from_spec_text(text).unwrap_err();
            assert!(
                e.to_string().contains(needle),
                "{text:?}: expected {needle:?} in {e}"
            );
        }
    }
}
