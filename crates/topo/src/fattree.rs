//! The canonical k-ary FatTree (Al-Fares et al., SIGCOMM 2008).

use crate::{Layer, NodeId, Topology};

/// Builds a k-ary FatTree.
///
/// For even `k ≥ 2`: `(k/2)²` core switches, `k` pods each containing `k/2`
/// aggregation and `k/2` edge switches, and `k/2` hosts per edge switch —
/// `k³/4` hosts total. Core switches sit at [`Layer::Spine`], aggregation at
/// [`Layer::Leaf`], edge at [`Layer::Tor`], so up-down routing and the Clos
/// tagging construction apply unchanged.
///
/// Core switch `c` (0-indexed) connects to aggregation switch `c / (k/2)`
/// of every pod, matching the standard FatTree wiring.
///
/// Names: `C1..` (core), `A1..` (aggregation), `E1..` (edge), `H1..`.
///
/// # Panics
/// Panics if `k` is odd or less than 2.
pub fn fat_tree(k: usize) -> Topology {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat_tree requires even k >= 2"
    );
    let half = k / 2;
    let mut t = Topology::new();

    let cores: Vec<NodeId> = (1..=half * half)
        .map(|i| t.add_switch(format!("C{i}"), Layer::Spine))
        .collect();

    let mut aggs = Vec::new();
    let mut edges = Vec::new();
    for pod in 0..k {
        for j in 0..half {
            aggs.push(t.add_switch(format!("A{}", pod * half + j + 1), Layer::Leaf));
        }
        for j in 0..half {
            edges.push(t.add_switch(format!("E{}", pod * half + j + 1), Layer::Tor));
        }
    }

    // Core-aggregation: core c connects to agg (c / half) in every pod.
    for (c, &core) in cores.iter().enumerate() {
        let agg_index = c / half;
        for pod in 0..k {
            t.connect(aggs[pod * half + agg_index], core);
        }
    }
    // Aggregation-edge full mesh within each pod.
    for pod in 0..k {
        for a in 0..half {
            for e in 0..half {
                t.connect(edges[pod * half + e], aggs[pod * half + a]);
            }
        }
    }
    // Hosts.
    let mut h = 0;
    for &edge in &edges {
        for _ in 0..half {
            h += 1;
            let host = t.add_host(format!("H{h}"));
            t.connect(host, edge);
        }
    }

    debug_assert!(t.check_consistency().is_ok());
    t
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::NodeKind;

    #[test]
    fn k4_has_canonical_counts() {
        let t = fat_tree(4);
        assert_eq!(t.num_switches(), 4 + 8 + 8); // 4 cores, 8 aggs, 8 edges
        assert_eq!(t.num_hosts(), 16); // k^3/4
                                       // Every switch uses exactly k ports.
        for s in t.switch_ids() {
            assert_eq!(t.node(s).num_ports(), 4, "{}", t.node(s).name);
        }
        for h in t.host_ids() {
            assert_eq!(t.node(h).num_ports(), 1);
            assert_eq!(t.node(h).kind, NodeKind::Host);
        }
    }

    #[test]
    fn core_wiring_is_striped() {
        let t = fat_tree(4);
        // Core 1 (index 0) connects to the first agg of each pod.
        let c1 = t.expect_node("C1");
        for pod in 0..4usize {
            let a = t.expect_node(&format!("A{}", pod * 2 + 1));
            assert!(t.link_between(a, c1).is_some());
        }
        // Core 3 (index 2) connects to the second agg of each pod.
        let c3 = t.expect_node("C3");
        for pod in 0..4usize {
            let a = t.expect_node(&format!("A{}", pod * 2 + 2));
            assert!(t.link_between(a, c3).is_some());
        }
    }

    #[test]
    fn k6_builds_consistent() {
        let t = fat_tree(6);
        t.check_consistency().unwrap();
        assert_eq!(t.num_hosts(), 54);
        assert_eq!(t.num_switches(), 9 + 18 + 18);
    }

    #[test]
    #[should_panic(expected = "even k")]
    fn odd_k_panics() {
        fat_tree(3);
    }
}
