//! BCube(n, k) server-centric fabrics (Guo et al., SIGCOMM 2009).
//!
//! The Tagger paper reports (§5.3) that Algorithm 2 needs only `k` tags on a
//! k-level BCube with default routing; this builder provides the substrate
//! for that experiment.

use crate::{Layer, NodeId, Topology};

/// Configuration for a BCube fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BCubeConfig {
    /// Switch port count `n` (also the arity of each address digit).
    pub n: usize,
    /// Level count parameter `k`: the fabric has `k + 1` switch levels
    /// `0..=k` and `n^(k+1)` servers.
    pub k: usize,
}

impl BCubeConfig {
    /// Number of servers: `n^(k+1)`.
    pub fn num_servers(&self) -> usize {
        self.n.pow(self.k as u32 + 1)
    }

    /// Number of switches: `(k+1) · n^k`.
    pub fn num_switches(&self) -> usize {
        (self.k + 1) * self.n.pow(self.k as u32)
    }

    /// Decomposes a server index into its `k+1` base-`n` address digits,
    /// least-significant first: `a_0, a_1, …, a_k`.
    pub fn digits(&self, server: usize) -> Vec<usize> {
        let mut d = Vec::with_capacity(self.k + 1);
        let mut s = server;
        for _ in 0..=self.k {
            d.push(s % self.n);
            s /= self.n;
        }
        d
    }

    /// Recomposes base-`n` digits (least-significant first) into an index.
    pub fn from_digits(&self, digits: &[usize]) -> usize {
        digits.iter().rev().fold(0, |acc, &d| acc * self.n + d)
    }
}

/// Builds BCube(n, k).
///
/// Server `s` has address digits `a_k … a_0` (base `n`). At level `l`, the
/// server connects to the level-`l` switch indexed by its address with
/// digit `l` removed; the `n` servers differing only in digit `l` share
/// that switch. Switches sit at [`Layer::Level`]`(l)`; servers at
/// [`Layer::Host`].
///
/// Names: servers `H0..` (0-indexed by address), switches `B<l>_<i>`.
///
/// # Panics
/// Panics if `n < 2`.
pub fn bcube(n: usize, k: usize) -> Topology {
    let cfg = BCubeConfig { n, k };
    assert!(n >= 2, "bcube requires n >= 2");
    let mut t = Topology::new();

    let servers: Vec<NodeId> = (0..cfg.num_servers())
        .map(|s| t.add_host(format!("H{s}")))
        .collect();

    let per_level = n.pow(k as u32);
    let mut switches = Vec::with_capacity((k + 1) * per_level);
    for l in 0..=k {
        for i in 0..per_level {
            switches.push(t.add_switch(format!("B{l}_{i}"), Layer::Level(l as u8)));
        }
    }

    // Wire: server s connects at level l to switch whose index is s with
    // digit l removed. Iterate switches-outer so each switch's ports are
    // allocated to its n members in digit order (port p = member with
    // digit-l value p), matching BCube conventions.
    for l in 0..=k {
        for i in 0..per_level {
            let sw = switches[l * per_level + i];
            // Reinsert each possible digit value at position l.
            let mut idigits = Vec::with_capacity(k);
            let mut rest = i;
            for _ in 0..k {
                idigits.push(rest % n);
                rest /= n;
            }
            for v in 0..n {
                let mut digits = Vec::with_capacity(k + 1);
                digits.extend_from_slice(&idigits[..l]);
                digits.push(v);
                digits.extend_from_slice(&idigits[l..]);
                let s = cfg.from_digits(&digits);
                t.connect(servers[s], sw);
            }
        }
    }

    debug_assert!(t.check_consistency().is_ok());
    t
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn counts_match_formulas() {
        for (n, k) in [(2, 1), (4, 1), (3, 2)] {
            let cfg = BCubeConfig { n, k };
            let t = bcube(n, k);
            assert_eq!(t.num_hosts(), cfg.num_servers(), "n={n} k={k}");
            assert_eq!(t.num_switches(), cfg.num_switches(), "n={n} k={k}");
            t.check_consistency().unwrap();
        }
    }

    #[test]
    fn each_server_has_k_plus_1_ports() {
        let t = bcube(4, 1);
        for h in t.host_ids() {
            assert_eq!(t.node(h).num_ports(), 2);
        }
        for s in t.switch_ids() {
            assert_eq!(t.node(s).num_ports(), 4);
        }
    }

    #[test]
    fn digits_round_trip() {
        let cfg = BCubeConfig { n: 4, k: 2 };
        for s in 0..cfg.num_servers() {
            assert_eq!(cfg.from_digits(&cfg.digits(s)), s);
        }
    }

    #[test]
    fn level0_switch_groups_servers_differing_in_digit0() {
        let t = bcube(4, 1);
        // Servers 0,1,2,3 differ only in digit 0 -> share switch B0_0.
        let sw = t.expect_node("B0_0");
        for s in 0..4 {
            let h = t.expect_node(&format!("H{s}"));
            assert!(t.link_between(h, sw).is_some(), "H{s} not on B0_0");
        }
        // Servers 0,4,8,12 differ only in digit 1 -> share switch B1_0.
        let sw = t.expect_node("B1_0");
        for s in [0, 4, 8, 12] {
            let h = t.expect_node(&format!("H{s}"));
            assert!(t.link_between(h, sw).is_some(), "H{s} not on B1_0");
        }
    }
}
