//! Property tests for the topology builders: structural invariants must
//! hold for every legal dimensioning, not just the fixtures.

use proptest::prelude::*;
use tagger_topo::{bcube, fat_tree, BCubeConfig, ClosConfig, JellyfishConfig, NodeKind};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn clos_builders_are_consistent(
        pods in 1usize..4,
        leaves in 1usize..4,
        tors in 1usize..4,
        spines in 1usize..5,
        hosts in 1usize..4,
    ) {
        let cfg = ClosConfig { pods, leaves_per_pod: leaves, tors_per_pod: tors, spines, hosts_per_tor: hosts };
        let topo = cfg.build();
        prop_assert!(topo.check_consistency().is_ok());
        prop_assert_eq!(topo.num_switches(), cfg.num_switches());
        prop_assert_eq!(topo.num_hosts(), cfg.num_hosts());
        // Exact link count: spine-leaf mesh + per-pod leaf-tor mesh + hosts.
        let expected = spines * pods * leaves + pods * leaves * tors + cfg.num_hosts();
        prop_assert_eq!(topo.num_links(), expected);
        // Every host has exactly one port, wired to a ToR.
        for h in topo.host_ids() {
            prop_assert_eq!(topo.node(h).num_ports(), 1);
            let tor = topo.attached_switch(h).unwrap();
            prop_assert_eq!(topo.node(tor).layer, tagger_topo::Layer::Tor);
        }
    }

    #[test]
    fn fat_tree_port_budget(k in 1usize..4) {
        let k = k * 2; // even
        let topo = fat_tree(k);
        prop_assert!(topo.check_consistency().is_ok());
        prop_assert_eq!(topo.num_hosts(), k * k * k / 4);
        for s in topo.switch_ids() {
            prop_assert_eq!(topo.node(s).num_ports(), k);
        }
    }

    #[test]
    fn bcube_wiring(n in 2usize..5, k in 1usize..3) {
        let cfg = BCubeConfig { n, k };
        let topo = bcube(n, k);
        prop_assert!(topo.check_consistency().is_ok());
        // Every server: k+1 ports; every switch: n ports.
        for h in topo.host_ids() {
            prop_assert_eq!(topo.node(h).num_ports(), k + 1);
        }
        for s in topo.switch_ids() {
            prop_assert_eq!(topo.node(s).num_ports(), n);
        }
        prop_assert_eq!(topo.num_links(), cfg.num_servers() * (k + 1));
    }

    #[test]
    fn jellyfish_degree_bounds(switches in 6usize..30, seed in 0u64..200) {
        let cfg = JellyfishConfig::half_servers(switches, 6, seed);
        let topo = cfg.build();
        prop_assert!(topo.check_consistency().is_ok());
        let mut deficient = 0usize;
        for s in topo.switch_ids() {
            let deg = topo
                .neighbors(s)
                .filter(|&(_, _, n)| topo.node(n).kind == NodeKind::Switch)
                .count();
            prop_assert!(deg <= cfg.network_degree);
            if deg < cfg.network_degree {
                deficient += 1;
            }
        }
        // The incremental construction leaves at most a few stubs free on
        // unlucky seeds; it must never be badly irregular.
        prop_assert!(deficient <= 2, "{deficient} deficient switches");
        // Server count exact.
        prop_assert_eq!(
            topo.num_hosts(),
            switches * (cfg.ports_per_switch - cfg.network_degree)
        );
    }

    #[test]
    fn peer_of_is_involutive(seed in 0u64..50) {
        let topo = JellyfishConfig::half_servers(10, 6, seed).build();
        for n in topo.node_ids() {
            for (port, _, _) in topo.neighbors(n) {
                let gp = tagger_topo::GlobalPort::new(n, port);
                let peer = topo.peer_of(gp).unwrap();
                prop_assert_eq!(topo.peer_of(peer).unwrap(), gp);
            }
        }
    }
}
