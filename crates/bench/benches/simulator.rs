//! Criterion benches for the discrete-event simulator: wall-clock cost
//! per simulated millisecond of PFC traffic.

use criterion::{criterion_group, criterion_main, Criterion};
use tagger_routing::Fib;
use tagger_sim::{FlowSpec, SimConfig, Simulator};
use tagger_switch::SwitchConfig;
use tagger_topo::{ClosConfig, FailureSet};

fn sim_one_ms(flows: usize) -> u64 {
    let topo = ClosConfig::small().build();
    let fib = Fib::shortest_path(&topo, &FailureSet::none());
    let cfg = SimConfig {
        switch: SwitchConfig {
            num_lossless: 1,
            ..SwitchConfig::default()
        },
        end_time_ns: 1_000_000,
        deadlock_check: false,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(topo.clone(), fib, None, cfg);
    let hosts: Vec<_> = topo.host_ids().collect();
    for i in 0..flows {
        let src = hosts[i % hosts.len()];
        let dst = hosts[(i + hosts.len() / 2) % hosts.len()];
        sim.add_flow(FlowSpec::new(src, dst, 0));
    }
    sim.run().total_delivered_bytes()
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_1ms_clos");
    g.sample_size(10);
    for flows in [1usize, 8, 16] {
        g.bench_function(format!("{flows}_flows"), |b| b.iter(|| sim_one_ms(flows)));
    }
    g.finish();
}

fn bench_deadlock_scenario(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_scenario");
    g.sample_size(10);
    for with_tagger in [false, true] {
        let name = if with_tagger {
            "with_tagger"
        } else {
            "without_tagger"
        };
        g.bench_function(name, |b| {
            b.iter(|| {
                tagger_sim::experiments::fig10_bounce_deadlock(with_tagger, 2_000_000)
                    .run()
                    .0
                    .total_delivered_bytes()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simulator, bench_deadlock_scenario);
criterion_main!(benches);
