//! Criterion benches for TCAM compilation and lookup (paper §7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tagger_core::clos::clos_tagging;
use tagger_core::tcam::{Compression, Tcam, TcamProgram};
use tagger_core::Tag;
use tagger_topo::{ClosConfig, PortId};

fn bench_compile(c: &mut Criterion) {
    let topo = ClosConfig::medium().build();
    let tagging = clos_tagging(&topo, 2).unwrap();
    let mut g = c.benchmark_group("tcam_compile");
    for (name, level) in [
        ("none", Compression::None),
        ("inport", Compression::InPort),
        ("joint", Compression::Joint),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &level, |b, &level| {
            b.iter(|| TcamProgram::compile(&topo, tagging.rules(), level))
        });
    }
    g.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let topo = ClosConfig::medium().build();
    let tagging = clos_tagging(&topo, 2).unwrap();
    let sw = topo.expect_node("L1");
    let rules = tagging.rules().rules_for(sw);
    let mut g = c.benchmark_group("tcam_lookup");
    for (name, level) in [("none", Compression::None), ("joint", Compression::Joint)] {
        let tcam = Tcam::compile(&rules, level);
        g.bench_with_input(BenchmarkId::from_parameter(name), &tcam, |b, tcam| {
            b.iter(|| {
                let mut acc = 0u32;
                for t in 1..=3u16 {
                    for i in 0..8u16 {
                        for o in 0..8u16 {
                            if let tagger_core::TagDecision::Lossless(Tag(x)) =
                                tcam.decide(Tag(t), PortId(i), PortId(o))
                            {
                                acc = acc.wrapping_add(x as u32);
                            }
                        }
                    }
                }
                acc
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_compile, bench_lookup);
criterion_main!(benches);
