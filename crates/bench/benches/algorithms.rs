//! Criterion benches for the tagging algorithms (paper §5.3 claims
//! Algorithm 2 runs in `O(L·T·(L + L·P))`; these measure the practical
//! scaling over fabric size).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tagger_core::{greedy_minimize, tag_by_hop_count, Elp, Tagging};
use tagger_topo::{ClosConfig, JellyfishConfig};

fn bench_algorithm1(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithm1_brute_force");
    for switches in [10usize, 20, 40] {
        let topo = JellyfishConfig::half_servers(switches, 8, 3).build();
        let elp = Elp::shortest(&topo, 1, false);
        g.bench_with_input(BenchmarkId::from_parameter(switches), &switches, |b, _| {
            b.iter(|| tag_by_hop_count(&topo, &elp))
        });
    }
    g.finish();
}

fn bench_algorithm2(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithm2_greedy_minimize");
    for switches in [10usize, 20, 40] {
        let topo = JellyfishConfig::half_servers(switches, 8, 3).build();
        let elp = Elp::shortest(&topo, 1, false);
        let brute = tag_by_hop_count(&topo, &elp);
        g.bench_with_input(BenchmarkId::from_parameter(switches), &switches, |b, _| {
            b.iter(|| greedy_minimize(&topo, &brute))
        });
    }
    g.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_from_elp");
    g.sample_size(10);
    for (name, topo, elp) in [
        {
            let t = ClosConfig::small().build();
            let e = Elp::updown(&t);
            ("clos_small_updown", t, e)
        },
        {
            let t = JellyfishConfig::half_servers(30, 8, 3).build();
            let e = Elp::shortest(&t, 1, false);
            ("jellyfish30_shortest", t, e)
        },
    ] {
        g.bench_function(name, |b| b.iter(|| Tagging::from_elp(&topo, &elp).unwrap()));
    }
    g.finish();
}

fn bench_clos_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("clos_structural_tagging");
    for (name, topo) in [
        ("small", ClosConfig::small().build()),
        ("medium", ClosConfig::medium().build()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| tagger_core::clos::clos_tagging(&topo, 1).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_algorithm1,
    bench_algorithm2,
    bench_full_pipeline,
    bench_clos_construction
);
criterion_main!(benches);
