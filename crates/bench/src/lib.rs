//! # tagger-bench — the experiment harness
//!
//! Shared fixtures and runners behind the binaries that regenerate every
//! table and figure of the paper (see `DESIGN.md` for the experiment
//! index and `EXPERIMENTS.md` for recorded results):
//!
//! | paper artifact | binary |
//! |---|---|
//! | Table 1 (reroute probability) | `table1_reroute` |
//! | Tables 3/4 + Fig. 5 (walk-through rules) | `table34_rules` |
//! | Table 5 (Jellyfish scalability) | `table5_jellyfish` |
//! | Fig. 10 (1-bounce deadlock) | `fig10_bounce_deadlock` |
//! | Fig. 11 (routing-loop deadlock) | `fig11_routing_loop` |
//! | Fig. 12 (PAUSE propagation) | `fig12_pause_propagation` |
//! | §4.4 optimality | `clos_optimality` |
//! | §5.3 BCube tag count | `bcube_tags` |
//! | §7 rule compression | `rule_compression` |
//! | §8 performance penalty | `perf_penalty` |
//! | §6 multi-class sharing | `multiclass_tags` |
//! | Fig. 8 priority transition ablation | `fig8_transition` |
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod fig5;
pub mod table5;

/// Prints a TSV table with an echoed title comment, the common output
/// format of the experiment binaries.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("# {title}");
    println!("{}", header.join("\t"));
    for row in rows {
        println!("{}", row.join("\t"));
    }
    println!();
}
