//! **Table 1** — packet reroute measurements.
//!
//! The paper instruments >20 production data centers for a week and
//! reports reroute probabilities around 1e-5. We reproduce the
//! methodology (IP-in-IP TTL probing, 100 probes per measurement) over a
//! synthetic fleet of Clos fabrics with a link-failure process calibrated
//! to the same order of magnitude. One row per simulated day.

use tagger_bench::print_table;
use tagger_sim::probe::{run_probe_day, ProbeConfig};
use tagger_topo::ClosConfig;

fn main() {
    let topo = ClosConfig::medium().build();
    let mut rows = Vec::new();
    for day in 0..7u64 {
        let cfg = ProbeConfig {
            measurements: 2_000_000,
            probes_per_measurement: 100,
            link_failure_probability: 2e-6,
            seed: 1000 + day,
        };
        let r = run_probe_day(&topo, &cfg);
        rows.push(vec![
            format!("2026-06-{:02}", 21 + day),
            r.total.to_string(),
            r.rerouted.to_string(),
            format!("{:.2e}", r.reroute_probability()),
        ]);
    }
    print_table(
        "Table 1: packet reroute measurements (synthetic failure process, \
         paper reports ~1e-5 over production fleets)",
        &[
            "day",
            "total_measurements",
            "rerouted",
            "reroute_probability",
        ],
        &rows,
    );
}
