//! **§8** — Tagger's performance penalty is negligible.
//!
//! Random permutation traffic on the healthy Clos, with and without
//! Tagger, across several seeds: aggregate goodput should match within
//! noise, because on bounce-free paths Tagger only rewrites DSCP.

use tagger_bench::print_table;
use tagger_sim::experiments::perf_penalty;

const END_NS: u64 = 5_000_000;

fn main() {
    let mut rows = Vec::new();
    for seed in [1u64, 2, 3, 4, 5] {
        let (with, _) = perf_penalty(true, seed, END_NS).run();
        let (without, _) = perf_penalty(false, seed, END_NS).run();
        let a = with.aggregate_goodput_bps() / 1e9;
        let b = without.aggregate_goodput_bps() / 1e9;
        rows.push(vec![
            seed.to_string(),
            format!("{b:.2}"),
            format!("{a:.2}"),
            format!("{:+.2}%", (a - b) / b * 100.0),
        ]);
    }
    print_table(
        "Performance penalty: 16-flow random permutation on healthy Clos \
         (paper 8: negligible)",
        &[
            "seed",
            "goodput_no_tagger_gbps",
            "goodput_tagger_gbps",
            "penalty",
        ],
        &rows,
    );
}
