//! **existence-oracle cost** — decision-procedure vs construction-pipeline
//! timing, emitting `BENCH_oracle.json`.
//!
//! Two questions the oracle must answer cheaply to be worth consulting
//! before every plan:
//!
//! 1. *Feasible fabrics*: across growing Clos (1-bounce up/down ELP)
//!    and Jellyfish (shortest-path ELP) instances, how does
//!    [`tagger_core::decide`] compare against actually running the
//!    Algorithm 1+2 pipeline (`minimize_elp` + `verify`)? The oracle's
//!    certified tag count must never exceed the construction's.
//! 2. *Infeasible kernels*: on flat counter-rotating rings (infeasible
//!    at one tag by Theorem 5.1), how much does the greedy kernel
//!    shrink cost, and does it always hand back a minimal witness?
//!
//! ```text
//! oracle_bench [--repeat N] [--out PATH]
//! ```
//!
//! Tag counts, kernel sizes and verdicts in the JSON are deterministic;
//! only the timing figures vary with the machine. Exits non-zero if any
//! verdict disagrees with the construction or a kernel is not minimal.

#![warn(clippy::unwrap_used)]

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use tagger_core::{decide, minimize_elp, Elp, Verdict};
use tagger_routing::Path;
use tagger_topo::{ClosConfig, JellyfishConfig, Layer, Topology};

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Fastest-of-N wall time for `f` (noise-robust: slow repeats only add
/// scheduler noise, never subtract work), plus the last return value.
fn fastest<T>(repeat: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..repeat {
        let start = Instant::now();
        out = Some(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    // repeat is clamped >= 1 in main, so the loop body always ran.
    match out {
        Some(v) => (best, v),
        None => unreachable!("repeat is clamped to at least 1"),
    }
}

struct FeasibleRow {
    label: String,
    paths: usize,
    hops: usize,
    oracle_ms: f64,
    construct_ms: f64,
    oracle_tags: usize,
    construct_tags: usize,
    lower_bound: usize,
}

/// Times the oracle and the Algorithm 1+2 pipeline on one fabric whose
/// ELP is known to be feasible; cross-checks the certified tag counts.
fn feasible_case(
    label: &str,
    topo: &Topology,
    elp: &Elp,
    repeat: usize,
) -> Result<FeasibleRow, String> {
    let (oracle_ms, verdict) = fastest(repeat, || decide(topo, elp, None));
    let feas = match verdict {
        Verdict::Feasible(f) => f,
        Verdict::Infeasible(_) => {
            return Err(format!("{label}: oracle calls a feasible ELP infeasible"));
        }
    };
    let (construct_ms, graph) = fastest(repeat, || minimize_elp(topo, elp));
    graph
        .verify()
        .map_err(|e| format!("{label}: construction certificate failed: {e:?}"))?;
    let construct_tags = graph.max_tag().map_or(0, |t| t.0 as usize);
    if feas.tags_used > construct_tags {
        return Err(format!(
            "{label}: oracle witness uses {} tags but the construction managed {}",
            feas.tags_used, construct_tags
        ));
    }
    Ok(FeasibleRow {
        label: label.to_string(),
        paths: elp.len(),
        hops: elp.paths().iter().map(Path::hops).sum(),
        oracle_ms: oracle_ms * 1e3,
        construct_ms: construct_ms * 1e3,
        oracle_tags: feas.tags_used,
        construct_tags,
        lower_bound: feas.lower_bound_tags,
    })
}

/// A flat N-switch ring with one two-hop path per ring edge: the
/// canonical Theorem 5.1 counterexample, infeasible at one tag.
fn ring(n: usize) -> Option<(Topology, Elp)> {
    let mut t = Topology::new();
    let switches: Vec<_> = (1..=n)
        .map(|i| t.add_switch(format!("R{i}"), Layer::Flat))
        .collect();
    let hosts: Vec<_> = (1..=n).map(|i| t.add_host(format!("H{i}"))).collect();
    for i in 0..n {
        t.connect(switches[i], switches[(i + 1) % n]);
        t.connect(hosts[i], switches[i]);
    }
    let mut paths = Vec::with_capacity(n);
    for i in 0..n {
        paths.push(
            Path::new(
                &t,
                vec![
                    hosts[i],
                    switches[i],
                    switches[(i + 1) % n],
                    switches[(i + 2) % n],
                    hosts[(i + 2) % n],
                ],
            )
            .ok()?,
        );
    }
    Some((t, Elp::from_paths(paths)))
}

struct KernelRow {
    label: String,
    paths: usize,
    shrink_ms: f64,
    kernel: usize,
    exhaustive: bool,
}

/// Times the infeasible verdict (dominated by the kernel shrink) and
/// re-checks minimality: dropping any one kernel path must flip the
/// verdict to feasible.
fn kernel_case(n: usize, repeat: usize) -> Result<KernelRow, String> {
    let label = format!("ring_{n}");
    let (topo, elp) = ring(n).ok_or_else(|| format!("{label}: ring construction failed"))?;
    let (shrink_ms, verdict) = fastest(repeat, || decide(&topo, &elp, Some(1)));
    let inf = match verdict {
        Verdict::Infeasible(i) => i,
        Verdict::Feasible(_) => {
            return Err(format!("{label}: oracle calls the 1-tag ring feasible"));
        }
    };
    for drop in 0..inf.kernel.len() {
        let sub: Vec<Path> = inf
            .kernel
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != drop)
            .filter_map(|(_, &pi)| elp.paths().get(pi).cloned())
            .collect();
        if !decide(&topo, &Elp::from_paths(sub), Some(1)).is_feasible() {
            return Err(format!("{label}: kernel is not minimal"));
        }
    }
    Ok(KernelRow {
        label,
        paths: elp.len(),
        shrink_ms: shrink_ms * 1e3,
        kernel: inf.kernel.len(),
        exhaustive: inf.exhaustive,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let repeat: usize = flag(&args, "--repeat")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let out_path = flag(&args, "--out").unwrap_or_else(|| "BENCH_oracle.json".to_string());

    let mut feasible = Vec::new();
    // The medium fabric's uncapped 1-bounce ELP is combinatorial (128
    // hosts); cap the per-pair reroutes there, as an operator would.
    let clos_sizes: [(&str, ClosConfig, Option<usize>); 2] = [
        ("clos_small", ClosConfig::small(), None),
        ("clos_medium_cap4", ClosConfig::medium(), Some(4)),
    ];
    for (label, cfg, cap) in clos_sizes {
        let topo = cfg.build();
        let elp = match cap {
            Some(c) => Elp::updown_with_bounces_capped(&topo, 1, c),
            None => Elp::updown_with_bounces(&topo, 1),
        };
        match feasible_case(label, &topo, &elp, repeat) {
            Ok(row) => feasible.push(row),
            Err(e) => {
                eprintln!("oracle_bench: {e}");
                return ExitCode::from(1);
            }
        }
    }
    for (switches, ports) in [(20usize, 6usize), (40, 8)] {
        let cfg = JellyfishConfig::half_servers(switches, ports, 7);
        let topo = cfg.build();
        let elp = Elp::shortest(&topo, 1, false);
        let label = format!("jellyfish_{switches}x{ports}");
        match feasible_case(&label, &topo, &elp, repeat) {
            Ok(row) => feasible.push(row),
            Err(e) => {
                eprintln!("oracle_bench: {e}");
                return ExitCode::from(1);
            }
        }
    }

    let mut kernels = Vec::new();
    for n in [5usize, 7, 9] {
        match kernel_case(n, repeat) {
            Ok(row) => kernels.push(row),
            Err(e) => {
                eprintln!("oracle_bench: {e}");
                return ExitCode::from(1);
            }
        }
    }

    for r in &feasible {
        println!(
            "{:<16} {:>6} paths {:>7} hops  oracle {:>8.2} ms ({} tags, floor {})  construct {:>8.2} ms ({} tags)",
            r.label, r.paths, r.hops, r.oracle_ms, r.oracle_tags, r.lower_bound,
            r.construct_ms, r.construct_tags,
        );
    }
    for r in &kernels {
        println!(
            "{:<16} {:>6} paths  infeasible at 1 tag: kernel {} path(s) in {:.2} ms{}",
            r.label,
            r.paths,
            r.kernel,
            r.shrink_ms,
            if r.exhaustive { "" } else { " (conservative)" },
        );
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"oracle_feasibility\",");
    let _ = writeln!(json, "  \"repeat\": {repeat},");
    let _ = writeln!(json, "  \"feasible\": [");
    for (i, r) in feasible.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{ \"fabric\": \"{}\", \"paths\": {}, \"hops\": {}, \"oracle_ms\": {:.2}, \
             \"construct_ms\": {:.2}, \"oracle_tags\": {}, \"construct_tags\": {}, \
             \"lower_bound_tags\": {} }}{}",
            r.label,
            r.paths,
            r.hops,
            r.oracle_ms,
            r.construct_ms,
            r.oracle_tags,
            r.construct_tags,
            r.lower_bound,
            if i + 1 < feasible.len() { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"infeasible_kernels\": [");
    for (i, r) in kernels.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{ \"fabric\": \"{}\", \"paths\": {}, \"kernel_paths\": {}, \
             \"exhaustive\": {}, \"shrink_ms\": {:.2} }}{}",
            r.label,
            r.paths,
            r.kernel,
            r.exhaustive,
            r.shrink_ms,
            if i + 1 < kernels.len() { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("oracle_bench: cannot write {out_path}: {e}");
        return ExitCode::from(2);
    }
    println!("wrote {out_path}");
    ExitCode::SUCCESS
}
