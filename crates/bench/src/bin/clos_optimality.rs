//! **§4.3/§4.4** — Clos construction: k-bounce ELP, k+1 priorities.
//!
//! For each bounce budget k, reports the lossless priorities used by the
//! optimal Clos construction (k+1 — matching the paper's pigeonhole
//! lower bound, which counts flows that may bounce repeatedly at one
//! switch) next to what the generic Algorithm 1+2 pipeline produces on a
//! sampled *loop-free* k-bounce ELP. The generic column can drop below
//! k+1 on small fabrics: loop-free paths cannot realize the pigeonhole
//! witness there, so fewer tags genuinely suffice for that restricted
//! path set — the certificate is verified either way.

use tagger_bench::print_table;
use tagger_bench::table5::clos_bounce_row;
use tagger_topo::ClosConfig;

fn main() {
    let topo = ClosConfig::small().build();
    let mut rows = Vec::new();
    for k in 0..=3usize {
        let (k, optimal, generic) = clos_bounce_row(&topo, k, 6);
        rows.push(vec![
            k.to_string(),
            (k + 1).to_string(),
            optimal.to_string(),
            generic.to_string(),
        ]);
    }
    print_table(
        "Clos optimality: lossless priorities for k-bounce service \
         (paper 4.4: k+1 needed when flows may bounce anywhere, incl. loops; \
         greedy column serves a sampled loop-free ELP)",
        &[
            "k_bounces",
            "k_plus_1",
            "clos_construction",
            "greedy_on_loopfree_elp",
        ],
        &rows,
    );
}
