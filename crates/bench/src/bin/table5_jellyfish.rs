//! **Table 5** — rules and priorities required for Jellyfish.
//!
//! Reproduces the paper's scalability study: Jellyfish fabrics with half
//! the ports wired to servers, shortest-path ELP; the final row adds
//! 1000 extra random paths, as in the paper. Row sizes are scaled to
//! laptop runtimes (the paper's largest instance is 2000 switches; pass
//! `--large` to run 1000/2000-switch rows).

use tagger_bench::print_table;
use tagger_bench::table5::{run_row, Table5Row};

fn fmt(row: &Table5Row, extra: usize) -> Vec<String> {
    vec![
        row.switches.to_string(),
        row.ports.to_string(),
        row.elp_paths.to_string(),
        extra.to_string(),
        row.longest_lossless.to_string(),
        row.priorities.to_string(),
        row.max_rules.to_string(),
        row.max_tcam.to_string(),
        if row.fallback { "yes" } else { "no" }.to_string(),
    ]
}

fn main() {
    let large = std::env::args().any(|a| a == "--large");
    // (switches, ports, extra random paths)
    let mut rows_cfg = vec![
        (50usize, 12usize, 0usize),
        (100, 12, 0),
        (200, 16, 0),
        (500, 16, 0),
    ];
    if large {
        rows_cfg.push((1000, 24, 0));
        rows_cfg.push((2000, 24, 1000));
    } else {
        rows_cfg.push((500, 16, 1000));
    }
    let mut rows = Vec::new();
    for (switches, ports, extra) in rows_cfg {
        let row = run_row(switches, ports, 1, extra, 7);
        eprintln!(
            "jellyfish {switches}sw/{ports}p done: {} priorities, {} rules max",
            row.priorities, row.max_rules
        );
        rows.push(fmt(&row, extra));
    }
    print_table(
        "Table 5: rules and priorities required for Jellyfish \
         (half the ports per switch connect servers; ELP = shortest paths, \
         last row + random paths)",
        &[
            "switches",
            "ports",
            "elp_paths",
            "extra_random",
            "longest_lossless",
            "priorities",
            "max_rules_per_switch",
            "max_tcam_per_switch",
            "fallback",
        ],
        &rows,
    );
}
