//! **BCube deadlock, end to end** — the §5.3 substrate in the packet
//! simulator.
//!
//! BCube servers forward traffic, so their NIC buffers join the cyclic
//! buffer dependency. Four flows with mixed digit-correction orders close
//! a ring through servers H0–H3; without Tagger it locks, with the
//! pipeline-compiled rules (2 lossless priorities, installed on servers
//! too) it runs at fair share with zero drops.

use tagger_sim::experiments::bcube_ring;

const END_NS: u64 = 8_000_000;

fn main() {
    for with_tagger in [false, true] {
        let (report, labels) = bcube_ring(with_tagger, END_NS).run();
        println!(
            "# BCube(2,1) ring — {} Tagger: deadlock={:?}, frozen={}/4, \
             lossless_drops={}",
            if with_tagger { "with" } else { "without" },
            report.deadlock.as_ref().map(|d| d.detected_at),
            report.frozen_flows(5),
            report.lossless_drops,
        );
        let labels: Vec<&str> = labels.iter().map(String::as_str).collect();
        print!("{}", report.rates_tsv(&labels));
        println!();
    }
}
