//! **§6 "PFC alternatives"** — DCQCN as a complement to Tagger.
//!
//! An 8-to-1 incast with and without DCQCN-lite: end-to-end rate control
//! keeps queues below Xoff and slashes PFC PAUSE generation at equal
//! goodput. It complements rather than replaces Tagger — rate control
//! reacts in RTTs while PFC transients are immediate, which is why
//! fleets running DCQCN still saw deadlocks and the paper still builds
//! Tagger.

use tagger_bench::print_table;
use tagger_sim::experiments::dcqcn_incast;

const END_NS: u64 = 10_000_000;

fn main() {
    let mut rows = Vec::new();
    for with_dcqcn in [false, true] {
        let (report, _) = dcqcn_incast(with_dcqcn, END_NS).run();
        rows.push(vec![
            if with_dcqcn {
                "pfc + dcqcn"
            } else {
                "pfc only"
            }
            .to_string(),
            report.pauses_sent.to_string(),
            format!("{:.1}", report.aggregate_goodput_bps() / 1e9),
            report.lossless_drops.to_string(),
        ]);
    }
    print_table(
        "DCQCN ablation: 8-to-1 incast into H1 over 10 ms",
        &["scheme", "pfc_pauses", "goodput_gbps", "lossless_drops"],
        &rows,
    );
}
