//! **§1/§3.2 end-to-end** — a real link failure with unconverged routing.
//!
//! The L1–T1 link dies at 1/5 of the run; switches keep their stale FIB
//! with local detours (packets ricochet at L1), and routing only
//! reconverges at 3/5. Without Tagger the ricochets deadlock the fabric
//! and — the paper's key §1 observation — **the deadlock outlives the
//! failure**: reconvergence doesn't clear it. With Tagger the ricochets
//! go lossy, the victim flow is merely slowed, and everything returns to
//! line rate once routing heals.

use tagger_sim::experiments::transient_failure;

const END_NS: u64 = 10_000_000;

fn main() {
    for with_tagger in [false, true] {
        let (report, labels) = transient_failure(with_tagger, END_NS).run();
        println!(
            "# transient failure — {} Tagger: deadlock={:?}, lossy_drops={}, \
             frozen at end={}/2 (failure at {} µs, reconvergence at {} µs)",
            if with_tagger { "with" } else { "without" },
            report.deadlock.as_ref().map(|d| d.detected_at),
            report.lossy_drops,
            report.frozen_flows(5),
            END_NS / 5 / 1_000,
            3 * END_NS / 5 / 1_000,
        );
        let labels: Vec<&str> = labels.iter().map(String::as_str).collect();
        print!("{}", report.rates_tsv(&labels));
        println!();
    }
}
