//! **Figure 10** — Clos deadlock due to 1-bounce paths.
//!
//! Reproduces the paper's testbed experiment: two flows whose reroutes
//! bounce at L1 and L3 close a cyclic buffer dependency. Without Tagger
//! both flows' rates collapse to zero and never recover; with Tagger
//! (ELP = up-down + 1-bounce, 2 lossless queues) neither flow is
//! affected. Prints one rate-vs-time TSV block per configuration.

use tagger_sim::experiments::fig10_bounce_deadlock;

const END_NS: u64 = 10_000_000; // 10 ms

fn main() {
    for with_tagger in [false, true] {
        let (report, labels) = fig10_bounce_deadlock(with_tagger, END_NS).run();
        let tag = if with_tagger { "with" } else { "without" };
        println!(
            "# Fig 10({}) — {} Tagger: deadlock={:?}, stalled={}/2, pauses={}",
            if with_tagger { "b" } else { "a" },
            tag,
            report.deadlock.as_ref().map(|d| d.detected_at),
            report.stalled_flows(5),
            report.pauses_sent,
        );
        let labels: Vec<&str> = labels.iter().map(String::as_str).collect();
        print!("{}", report.rates_tsv(&labels));
        println!();
    }
}
