//! **§1 prior-work comparison** — detect-and-break recovery vs Tagger.
//!
//! The first category of deadlock solutions detects a formed deadlock
//! and breaks it (by flushing a queue). The paper's critique: that
//! treats the symptom, so the deadlock reappears whenever the triggering
//! conditions recur — and every break drops lossless packets, violating
//! the contract PFC exists to provide. This binary runs the Figure 10
//! workload with green traffic arriving in waves: recovery fires again
//! and again; Tagger never needs it.

use tagger_bench::print_table;
use tagger_sim::experiments::recovery_baseline;

const END_NS: u64 = 20_000_000;

fn main() {
    let mut rows = Vec::new();
    for with_tagger in [false, true] {
        let (report, _) = recovery_baseline(with_tagger, END_NS).run();
        rows.push(vec![
            if with_tagger {
                "tagger (prevention)"
            } else {
                "detect-and-break (recovery)"
            }
            .to_string(),
            report.recoveries.to_string(),
            report.recovery_drops.to_string(),
            (report.total_delivered_bytes() / 1_000_000).to_string(),
        ]);
    }
    print_table(
        "Deadlock recovery vs prevention (Fig 10 workload, 4 green waves \
         over 20 ms): recovery fires per recurrence and sacrifices \
         lossless packets; Tagger prevents the CBD outright",
        &[
            "scheme",
            "recoveries",
            "lossless_packets_sacrificed",
            "delivered_MB",
        ],
        &rows,
    );
}
