//! **fleet throughput** — the `tagger-fleetd` chaos-soak drill as a
//! benchmark, emitting `BENCH_fleetd.json`.
//!
//! Runs the same seeded multi-fabric soak the daemon's `soak`
//! subcommand runs (every fabric under its own chaotic southbound,
//! interleaved ingest, bounded fair drain), requires the fleet to end
//! fully certified, and records the throughput figures: fabrics, events
//! ingested, events per second, commits, rollbacks, and the p99 stage
//! latency across every committed epoch in the fleet.
//!
//! ```text
//! fleet_soak [--fabrics N] [--seed S] [--events N] [--fail-rate R] [--out PATH]
//! ```
//!
//! The counters in the JSON are seed-deterministic; only `elapsed_ms`,
//! `events_per_sec` and the latency figures vary with the machine.
//! Exits non-zero if any fabric fails readiness — a benchmark of a
//! broken fleet is not a benchmark.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;
use tagger_fleet::{percentile_us, run_soak, SoakConfig};

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parse = |name: &str, default: u64| -> u64 {
        flag(&args, name)
            .map(|v| v.parse().unwrap_or(default))
            .unwrap_or(default)
    };
    let dir = std::env::temp_dir().join(format!("tagger-bench-fleet-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cfg = SoakConfig {
        fabrics: parse("--fabrics", 8) as usize,
        seed: parse("--seed", 1),
        events_per_fabric: parse("--events", 48) as usize,
        fail_rate: flag(&args, "--fail-rate")
            .map(|v| v.parse().unwrap_or(0.25))
            .unwrap_or(0.25),
        dir: dir.clone(),
    };
    let out_path = flag(&args, "--out").unwrap_or_else(|| "BENCH_fleetd.json".to_string());

    let start = Instant::now();
    let outcome = match run_soak(&cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("fleet_soak: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed = start.elapsed();
    std::fs::remove_dir_all(&dir).ok();

    print!("{}", outcome.readiness.render());
    if !outcome.readiness.all_ready() {
        eprintln!("fleet_soak: fleet failed readiness; refusing to record the benchmark");
        return ExitCode::from(1);
    }

    let snap = &outcome.snapshot;
    let ingested: u64 = snap.fabrics.iter().map(|f| f.ingested).sum();
    let latencies = snap.all_latencies_us();
    let elapsed_ms = elapsed.as_secs_f64() * 1e3;
    let events_per_sec = ingested as f64 / elapsed.as_secs_f64();

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"fleetd_soak\",");
    let _ = writeln!(json, "  \"fabrics\": {},", cfg.fabrics);
    let _ = writeln!(json, "  \"seed\": {},", cfg.seed);
    let _ = writeln!(json, "  \"events_ingested\": {ingested},");
    let _ = writeln!(json, "  \"events_per_sec\": {events_per_sec:.1},");
    let _ = writeln!(json, "  \"elapsed_ms\": {elapsed_ms:.1},");
    let _ = writeln!(json, "  \"drain_cycles\": {},", outcome.drain_cycles);
    let _ = writeln!(
        json,
        "  \"commits\": {},",
        snap.ctrl_rollup.epochs_committed
    );
    let _ = writeln!(json, "  \"rollbacks\": {},", snap.ctrl_rollup.rollbacks);
    let _ = writeln!(
        json,
        "  \"flaps_damped\": {},",
        snap.ctrl_rollup.flaps_damped
    );
    let _ = writeln!(
        json,
        "  \"faults_injected\": {},",
        snap.fabrics.iter().map(|f| f.faults_injected).sum::<u64>()
    );
    let _ = writeln!(
        json,
        "  \"epoch_latency_us\": {{ \"p50\": {}, \"p99\": {}, \"max\": {} }},",
        percentile_us(&latencies, 50),
        percentile_us(&latencies, 99),
        latencies.iter().max().copied().unwrap_or(0)
    );
    let _ = writeln!(
        json,
        "  \"certified_fabrics\": {}",
        outcome.readiness.ready_count()
    );
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("fleet_soak: cannot write {out_path}: {e}");
        return ExitCode::from(2);
    }
    println!(
        "wrote {out_path}: {ingested} events over {} fabrics in {elapsed_ms:.0} ms \
         ({events_per_sec:.0} events/s)",
        cfg.fabrics
    );
    ExitCode::SUCCESS
}
