//! **Robustness sweep** — the headline guarantee, statistically.
//!
//! Many independent trials: random permutation traffic, then 1–2 random
//! inter-switch link failures with stale routing (local detours), then
//! reconvergence. Counts how many trials end with a deadlock or frozen
//! flows. Without Tagger, some failure patterns lock the fabric; with
//! Tagger and a 1-bounce ELP, none ever do — by Theorem 5.1 it *cannot*
//! happen, and the sweep exercises that certificate in the packet-level
//! simulator.
//!
//! Pass `--trials N` to change the per-configuration trial count
//! (default 20).

use tagger_bench::print_table;
use tagger_sim::experiments::failure_trial;

const END_NS: u64 = 6_000_000;

fn main() {
    let trials: u64 = std::env::args()
        .skip_while(|a| a != "--trials")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let mut rows = Vec::new();
    for nfail in [1usize, 2] {
        for with_tagger in [false, true] {
            let mut deadlocks = 0u64;
            let mut frozen_trials = 0u64;
            let mut lossless_drops = 0u64;
            for seed in 0..trials {
                let report = failure_trial(with_tagger, seed, nfail, END_NS);
                if report.deadlock.is_some() {
                    deadlocks += 1;
                }
                if report.frozen_flows(3) > 0 {
                    frozen_trials += 1;
                }
                lossless_drops += report.lossless_drops;
            }
            rows.push(vec![
                nfail.to_string(),
                if with_tagger { "tagger" } else { "vanilla" }.to_string(),
                format!("{deadlocks}/{trials}"),
                format!("{frozen_trials}/{trials}"),
                lossless_drops.to_string(),
            ]);
        }
    }
    print_table(
        "Failure sweep: random permutation traffic + random link failures \
         with stale routing, then reconvergence",
        &[
            "failed_links",
            "scheme",
            "trials_with_deadlock",
            "trials_with_frozen_flows",
            "lossless_drops_total",
        ],
        &rows,
    );
}
