//! **Figure 11** — deadlock due to a routing loop.
//!
//! A bad route installed at L1 loops F1's packets between T1 and L1.
//! Without Tagger the lossless loop traffic closes a two-switch CBD and
//! the innocent flow F2 freezes. With Tagger the looping packets fall
//! into the lossy class at the hairpin and F2 keeps running; F1's
//! goodput is zero either way (its packets die of TTL), exactly as the
//! paper reports.

use tagger_sim::experiments::fig11_routing_loop;

const END_NS: u64 = 10_000_000;

fn main() {
    for with_tagger in [false, true] {
        let (report, labels) = fig11_routing_loop(with_tagger, END_NS).run();
        println!(
            "# Fig 11 — {} Tagger: deadlock={:?}, F2 tail rate={:.2} Gb/s, \
             F1 ttl_drops={}, lossy_drops={}",
            if with_tagger { "with" } else { "without" },
            report.deadlock.as_ref().map(|d| d.detected_at),
            report.flows[1].tail_rate(5) / 1e9,
            report.flows[0].ttl_drops,
            report.lossy_drops,
        );
        let labels: Vec<&str> = labels.iter().map(String::as_str).collect();
        print!("{}", report.rates_tsv(&labels));
        println!();
    }
}
