//! **scenario sweep throughput** — the hierarchical-timing-wheel vs
//! binary-heap event-queue bench, emitting `BENCH_scenarios.json`.
//!
//! Runs the shipped incast sweep (`examples/scenarios/incast_sweep.scn`,
//! a 128-to-1 incast across Clos fabrics from 32 to 1024 hosts — a
//! near-million-event grid) `--repeat` times per backend (default 3,
//! fastest repeat counted) via the same `tagger-scenario` expansion the
//! CLI uses, requires every assert to
//! pass on both backends and the per-point metrics to agree exactly (the
//! wheel is a drop-in replacement, not an approximation), and records
//! events/second for each backend plus the wheel:heap speedup.
//!
//! ```text
//! scenario_bench [--scn PATH] [--repeat N] [--out PATH]
//! ```
//!
//! Event counts in the JSON are seed-deterministic; only the timing
//! figures vary with the machine. Exits non-zero if either backend
//! fails the scenario's asserts or their metrics diverge.

use std::fmt::Write as _;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;
use tagger_scenario::{run_scenario, RunOptions, ScenarioResult};
use tagger_sim::QueueKind;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

struct BackendRun {
    label: &'static str,
    events: u64,
    elapsed_s: f64,
    result: ScenarioResult,
}

fn run_backend(
    text: &str,
    file: &str,
    queue: QueueKind,
    label: &'static str,
    repeat: usize,
) -> Result<BackendRun, String> {
    let opts = RunOptions {
        seed: None,
        queue: Some(queue),
        base_dir: Path::new(file)
            .parent()
            .unwrap_or(Path::new("."))
            .to_path_buf(),
    };
    // Fastest-of-N: the minimum over repeats is the noise-robust
    // estimate of the backend's true cost (slower repeats only ever
    // add scheduler/frequency noise, never subtract work).
    let mut elapsed_s = f64::INFINITY;
    let mut result = None;
    for _ in 0..repeat {
        let start = Instant::now();
        result = Some(run_scenario(text, file, &opts).map_err(|e| format!("{file}:{e}"))?);
        elapsed_s = elapsed_s.min(start.elapsed().as_secs_f64());
    }
    let result = result.ok_or_else(|| "--repeat must be at least 1".to_string())?;
    if !result.pass() {
        return Err(format!("{label} backend failed the scenario's asserts"));
    }
    let events = result
        .points
        .iter()
        .map(|p| p.metrics.events_processed)
        .sum();
    Ok(BackendRun {
        label,
        events,
        elapsed_s,
        result,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scn = flag(&args, "--scn").unwrap_or_else(|| "examples/scenarios/incast_sweep.scn".into());
    let repeat: usize = flag(&args, "--repeat")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let out_path = flag(&args, "--out").unwrap_or_else(|| "BENCH_scenarios.json".to_string());

    let text = match std::fs::read_to_string(&scn) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("scenario_bench: cannot read {scn}: {e}");
            return ExitCode::from(2);
        }
    };

    let backends = [
        (QueueKind::TimingWheel, "wheel"),
        (QueueKind::BinaryHeap, "heap"),
    ];
    let mut runs = Vec::new();
    for (queue, label) in backends {
        match run_backend(&text, &scn, queue, label, repeat) {
            Ok(run) => {
                println!(
                    "{label:>5}: {} events over {} points in {:.2} s ({:.0} events/s)",
                    run.events,
                    run.result.points.len(),
                    run.elapsed_s,
                    run.events as f64 / run.elapsed_s,
                );
                runs.push(run);
            }
            Err(e) => {
                eprintln!("scenario_bench: {e}");
                return ExitCode::from(1);
            }
        }
    }
    let (wheel, heap) = (&runs[0], &runs[1]);

    // The wheel must be a drop-in replacement: identical point metrics,
    // not merely identical verdicts.
    for (w, h) in wheel.result.points.iter().zip(&heap.result.points) {
        if w.metrics != h.metrics {
            eprintln!(
                "scenario_bench: wheel and heap metrics diverge at point {:?}",
                w.vars
            );
            return ExitCode::from(1);
        }
    }

    let rate = |r: &BackendRun| r.events as f64 / r.elapsed_s;
    let speedup = rate(wheel) / rate(heap);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"scenario_incast_sweep\",");
    let _ = writeln!(json, "  \"scenario\": \"{}\",", wheel.result.name);
    let _ = writeln!(json, "  \"seed\": {},", wheel.result.seed);
    let _ = writeln!(json, "  \"points\": {},", wheel.result.points.len());
    let _ = writeln!(json, "  \"events\": {},", wheel.events);
    for r in &runs {
        let _ = writeln!(
            json,
            "  \"{}\": {{ \"elapsed_ms\": {:.1}, \"events_per_sec\": {:.0} }},",
            r.label,
            r.elapsed_s * 1e3,
            rate(r),
        );
    }
    let _ = writeln!(json, "  \"wheel_speedup\": {speedup:.2}");
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("scenario_bench: cannot write {out_path}: {e}");
        return ExitCode::from(2);
    }
    println!("wrote {out_path}: wheel speedup {speedup:.2}x over heap");
    if speedup < 1.0 {
        eprintln!("scenario_bench: WARNING: wheel slower than heap on this machine");
    }
    ExitCode::SUCCESS
}
