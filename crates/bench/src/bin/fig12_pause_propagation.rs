//! **Figure 12** — PFC PAUSE propagation due to deadlock.
//!
//! A 4-to-1 shuffle into H1 and a 1-to-4 shuffle out of H5 run together;
//! two flows ride 1-bounce paths that close a CBD. Without Tagger the
//! deadlock's PAUSE frames propagate until all eight flows are frozen;
//! with Tagger none are affected.

use tagger_sim::experiments::fig12_pause_propagation;

const END_NS: u64 = 10_000_000;

fn main() {
    for with_tagger in [false, true] {
        let (report, labels) = fig12_pause_propagation(with_tagger, END_NS).run();
        println!(
            "# Fig 12({}) — {} Tagger: deadlock={:?}, frozen={}/8, pauses={}",
            if with_tagger { "a/c" } else { "b/d" },
            if with_tagger { "with" } else { "without" },
            report.deadlock.as_ref().map(|d| d.detected_at),
            report.frozen_flows(5),
            report.pauses_sent,
        );
        let labels: Vec<&str> = labels.iter().map(String::as_str).collect();
        print!("{}", report.rates_tsv(&labels));
        println!();
    }
}
