//! **Tables 3 & 4 / Figure 5** — the walk-through example.
//!
//! Prints the tag-rewriting rules installed on switches A, B and C of the
//! Fig. 5 topology, first under Algorithm 1 (Table 3: brute-force, 3
//! lossless priorities) and then under Algorithm 2 (Table 4 shape:
//! merged, 2 lossless priorities), plus the TCAM entry counts after
//! compression.

use tagger_bench::fig5;
use tagger_bench::print_table;
use tagger_core::tcam::{Compression, TcamProgram};
use tagger_core::{greedy_minimize, tag_by_hop_count, RuleSet, Tagging};
use tagger_topo::Topology;

fn dump_rules(topo: &Topology, rules: &RuleSet, title: &str) {
    for sw in ["A", "B", "C"] {
        let node = topo.expect_node(sw);
        let rows: Vec<Vec<String>> = rules
            .rules_for(node)
            .into_iter()
            .map(|r| {
                vec![
                    r.tag.to_string(),
                    r.in_port.to_string(),
                    r.out_port.to_string(),
                    r.new_tag.to_string(),
                ]
            })
            .collect();
        print_table(
            &format!("{title}: rules installed in {sw} (unmatched -> lossy)"),
            &["Tag", "InPort", "OutPort", "NewTag"],
            &rows,
        );
    }
}

fn main() {
    let topo = fig5::topology();
    let elp = fig5::elp(&topo);

    // Table 3: Algorithm 1 (brute force).
    let brute = tag_by_hop_count(&topo, &elp);
    let brute_rules = RuleSet::from_graph(&topo, &brute).expect("deterministic");
    println!(
        "# Algorithm 1: {} lossless priorities at switches (max tag {})",
        brute.num_lossless_tags(&topo),
        brute.max_tag().unwrap()
    );
    dump_rules(&topo, &brute_rules, "Table 3");

    // Table 4: Algorithm 2 (greedy merge) via the full verified pipeline.
    let merged = greedy_minimize(&topo, &brute);
    println!(
        "# Algorithm 2: {} lossless priorities at switches",
        merged.num_lossless_tags(&topo)
    );
    let tagging = Tagging::from_elp(&topo, &elp).expect("pipeline");
    dump_rules(&topo, tagging.rules(), "Table 4");

    // §7: compression of the merged rules.
    let mut rows = Vec::new();
    for (label, level) in [
        ("exact-match", Compression::None),
        ("inport-aggregated", Compression::InPort),
        ("joint", Compression::Joint),
    ] {
        let prog = TcamProgram::compile(&topo, tagging.rules(), level);
        rows.push(vec![
            label.to_string(),
            prog.total_entries().to_string(),
            prog.max_entries_per_switch().to_string(),
        ]);
    }
    print_table(
        "TCAM compression of the Table 4 rules",
        &["level", "total_entries", "max_per_switch"],
        &rows,
    );
}
