//! **network ingest throughput** — the DESIGN §15 framed TCP front as a
//! benchmark, emitting `BENCH_ingestd.json`.
//!
//! Two legs over real loopback sockets, same seeded multi-fabric
//! scenario-schedule lines in both:
//!
//! - **clean**: clients straight into `tagger-fleet`'s ingest server —
//!   the protocol's steady-state throughput;
//! - **chaos**: the same stream through the fault-injecting
//!   `ChaosTransport` proxy (disconnects, duplicates, mid-frame
//!   truncation, delays) — what retry, resync and dedupe cost when the
//!   transport misbehaves.
//!
//! Both legs must deliver every event exactly once (the server's
//! per-fabric `ingested` counters are checked against the offered line
//! counts); a benchmark of a lossy ingest front is not a benchmark.
//!
//! ```text
//! ingestd [--fabrics N] [--seed S] [--events N] [--out PATH]
//! ```
//!
//! The event counts in the JSON are seed-deterministic; `elapsed_ms`,
//! `events_per_sec` and the fault/retry counters vary with the machine.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use tagger_ctrl::{ChaosConfig, CtrlEvent};
use tagger_fleet::net::{
    send_lines, ChaosTransport, ClientConfig, NetChaosConfig, ServeConfig, Server,
};
use tagger_topo::{ClosConfig, Topology};

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// SplitMix64 — the soak harness's per-fabric seed derivation.
fn fabric_seed(master: u64, i: u64) -> u64 {
    let mut z = master.wrapping_add(i.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn schedule_lines(
    topo: &Topology,
    name: &str,
    seed: u64,
    mix: usize,
    events: usize,
) -> Vec<String> {
    let mixes = tagger_scenario::schedule::library();
    tagger_scenario::schedule::events(&mixes[mix % mixes.len()], topo, seed, events)
        .iter()
        .map(|e: &CtrlEvent| format!("{name}: {}", e.trace_line(topo)))
        .collect()
}

struct LegResult {
    elapsed: Duration,
    delivered: u64,
    reconnects: u64,
    backpressure_hits: u64,
    resends: u64,
    faults: u64,
}

/// Runs one leg: a fresh server (chaotic southbound for realism), all
/// fabrics' lines from one client thread each, optionally through the
/// chaos proxy. Returns `Err` if any event is lost, double-applied or
/// rejected.
fn run_leg(
    dir: &std::path::Path,
    topo: &Topology,
    seed: u64,
    lines: &[Vec<String>],
    proxied: bool,
) -> Result<LegResult, String> {
    std::fs::remove_dir_all(dir).ok();
    let mut serve = ServeConfig::new(dir, topo.clone());
    serve.chaos = Some(ChaosConfig::new(seed, 0.25));
    serve.drain_interval = Duration::from_millis(2);
    let server = Server::start("127.0.0.1:0", serve).map_err(|e| e.to_string())?;

    let proxy = if proxied {
        let cfg = NetChaosConfig {
            seed: seed ^ 0x7A05,
            disconnect_rate: 0.02,
            duplicate_rate: 0.05,
            truncate_rate: 0.02,
            delay_rate: 0.05,
            max_delay_ms: 3,
        }
        .clamped();
        Some(ChaosTransport::start(server.addr(), cfg).map_err(|e| e.to_string())?)
    } else {
        None
    };
    let addr = proxy
        .as_ref()
        .map(|p| p.addr().to_string())
        .unwrap_or_else(|| server.addr().to_string());

    let start = Instant::now();
    let handles: Vec<_> = lines
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, fabric_lines)| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut cfg = ClientConfig::new(addr, i as u64 + 1);
                cfg.seed = fabric_seed(seed ^ 0xC11E, i as u64);
                cfg.max_attempts = 128;
                cfg.max_reconnects = 64;
                cfg.reply_timeout = Duration::from_millis(300);
                send_lines(&cfg, &fabric_lines)
            })
        })
        .collect();
    let mut delivered = 0u64;
    let mut reconnects = 0u64;
    let mut backpressure_hits = 0u64;
    let mut resends = 0u64;
    for (i, h) in handles.into_iter().enumerate() {
        let report = h
            .join()
            .map_err(|_| format!("client {i} panicked"))?
            .map_err(|e| format!("client {i}: {e}"))?;
        if report.delivered != report.offered || !report.rejections.is_empty() {
            return Err(format!(
                "client {i} delivered {}/{} with {} rejections",
                report.delivered,
                report.offered,
                report.rejections.len()
            ));
        }
        delivered += report.delivered;
        reconnects += report.reconnects;
        backpressure_hits += report.backpressure_hits;
        resends += report.resends;
    }
    let elapsed = start.elapsed();
    let faults = proxy.as_ref().map(|p| p.stats().faults()).unwrap_or(0);
    if let Some(p) = proxy {
        p.shutdown();
    }
    let outcome = server.shutdown().map_err(|e| e.to_string())?;
    for (i, fabric_lines) in lines.iter().enumerate() {
        let name = format!("net-{i}");
        let ingested = outcome
            .report
            .fabrics
            .iter()
            .find(|f| f.name == name)
            .map(|f| f.ingested)
            .unwrap_or(0);
        if ingested != fabric_lines.len() as u64 {
            return Err(format!(
                "fabric {name}: ingested {ingested}, offered {} — lost or double-applied",
                fabric_lines.len()
            ));
        }
    }
    std::fs::remove_dir_all(dir).ok();
    Ok(LegResult {
        elapsed,
        delivered,
        reconnects,
        backpressure_hits,
        resends,
        faults,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parse = |name: &str, default: u64| -> u64 {
        flag(&args, name)
            .map(|v| v.parse().unwrap_or(default))
            .unwrap_or(default)
    };
    let fabrics = parse("--fabrics", 8) as usize;
    let seed = parse("--seed", 0xC0FFEE);
    let events = parse("--events", 24) as usize;
    let out_path = flag(&args, "--out").unwrap_or_else(|| "BENCH_ingestd.json".to_string());
    let dir = std::env::temp_dir().join(format!("tagger-bench-ingestd-{}", std::process::id()));

    let topo = ClosConfig::small().build();
    let lines: Vec<Vec<String>> = (0..fabrics)
        .map(|i| {
            schedule_lines(
                &topo,
                &format!("net-{i}"),
                fabric_seed(seed, i as u64),
                i,
                events,
            )
        })
        .collect();
    let offered: u64 = lines.iter().map(|l| l.len() as u64).sum();

    let clean = match run_leg(&dir.join("clean"), &topo, seed, &lines, false) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ingestd: clean leg failed: {e}");
            return ExitCode::from(1);
        }
    };
    let chaos = match run_leg(&dir.join("chaos"), &topo, seed, &lines, true) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ingestd: chaos leg failed: {e}");
            return ExitCode::from(1);
        }
    };
    std::fs::remove_dir_all(&dir).ok();

    let rate = |r: &LegResult| r.delivered as f64 / r.elapsed.as_secs_f64();
    let leg_json = |name: &str, r: &LegResult, last: bool| {
        let mut out = String::new();
        let _ = writeln!(out, "  \"{name}\": {{");
        let _ = writeln!(out, "    \"delivered\": {},", r.delivered);
        let _ = writeln!(
            out,
            "    \"elapsed_ms\": {:.1},",
            r.elapsed.as_secs_f64() * 1e3
        );
        let _ = writeln!(out, "    \"events_per_sec\": {:.1},", rate(r));
        let _ = writeln!(out, "    \"faults_injected\": {},", r.faults);
        let _ = writeln!(out, "    \"reconnects\": {},", r.reconnects);
        let _ = writeln!(out, "    \"backpressure_hits\": {},", r.backpressure_hits);
        let _ = writeln!(out, "    \"resends\": {}", r.resends);
        let _ = writeln!(out, "  }}{}", if last { "" } else { "," });
        out
    };
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"ingestd_loopback\",");
    let _ = writeln!(json, "  \"fabrics\": {fabrics},");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"events_offered\": {offered},");
    json.push_str(&leg_json("clean", &clean, false));
    json.push_str(&leg_json("chaos", &chaos, true));
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("ingestd: cannot write {out_path}: {e}");
        return ExitCode::from(2);
    }
    println!(
        "wrote {out_path}: {offered} events, clean {:.0} events/s, \
         chaos {:.0} events/s under {} faults",
        rate(&clean),
        rate(&chaos),
        chaos.faults
    );
    ExitCode::SUCCESS
}
