//! **§6** — multiple application classes share tags.
//!
//! N lossless classes each tolerating M bounces need only M+N priorities
//! with offset sharing, versus N(M+1) naively. Prints the table and
//! verifies each shared scheme is deadlock-free.

use tagger_bench::print_table;
use tagger_core::multiclass::MultiClass;
use tagger_topo::ClosConfig;

fn main() {
    let topo = ClosConfig::small().build();
    let mut rows = Vec::new();
    for classes in 1..=4u16 {
        for bounces in 0..=2u16 {
            let mc = MultiClass { classes, bounces };
            let tagging = mc.clos_tagging(&topo).expect("clos");
            tagging.graph().verify().expect("deadlock-free");
            rows.push(vec![
                classes.to_string(),
                bounces.to_string(),
                (classes * (bounces + 1)).to_string(),
                mc.total_tags().to_string(),
                tagging.num_lossless_tags_on(&topo).to_string(),
            ]);
        }
    }
    print_table(
        "Multi-class tag sharing (paper 6): N classes, M bounces -> M+N tags",
        &[
            "classes_N",
            "bounces_M",
            "naive_N(M+1)",
            "shared_M+N",
            "verified_tags",
        ],
        &rows,
    );
}
