//! **§7** — TCAM rule compression.
//!
//! The paper derives `n(n−1)·m(m−1)/2` exact-match rules per switch and
//! shows InPort bitmap aggregation compresses them to `n·m(m−1)/2`;
//! joint aggregation does better still. This binary measures all three
//! levels on Clos and Jellyfish rule sets and checks the bound.

use tagger_bench::print_table;
use tagger_core::clos::clos_tagging;
use tagger_core::tcam::{Compression, TcamProgram};
use tagger_core::{Elp, Tagging};
use tagger_topo::{ClosConfig, JellyfishConfig};

fn main() {
    let mut rows = Vec::new();

    for k in [1usize, 2, 3] {
        let topo = ClosConfig::small().build();
        let tagging = clos_tagging(&topo, k).expect("clos");
        for (label, level) in [
            ("exact", Compression::None),
            ("inport", Compression::InPort),
            ("joint", Compression::Joint),
        ] {
            let prog = TcamProgram::compile(&topo, tagging.rules(), level);
            rows.push(vec![
                format!("clos-small k={k}"),
                label.to_string(),
                prog.total_entries().to_string(),
                prog.max_entries_per_switch().to_string(),
            ]);
        }
    }

    let topo = JellyfishConfig::half_servers(30, 8, 5).build();
    let elp = Elp::shortest(&topo, 1, false);
    let tagging = Tagging::from_elp(&topo, &elp).expect("pipeline");
    for (label, level) in [
        ("exact", Compression::None),
        ("inport", Compression::InPort),
        ("joint", Compression::Joint),
    ] {
        let prog = TcamProgram::compile(&topo, tagging.rules(), level);
        rows.push(vec![
            "jellyfish-30".to_string(),
            label.to_string(),
            prog.total_entries().to_string(),
            prog.max_entries_per_switch().to_string(),
        ]);
    }

    print_table(
        "TCAM compression (paper 7): exact n(n-1)m(m-1)/2 -> inport \
         n*m(m-1)/2 -> joint",
        &["ruleset", "level", "total_entries", "max_per_switch"],
        &rows,
    );
}
