//! **Figure 8** — why priority transition needs egress-queue remapping.
//!
//! Runs the same bounce-into-bottleneck workload under the correct
//! Fig. 8(b) behaviour (egress queue matches the rewritten tag) and the
//! default Fig. 8(a) behaviour (egress queue matches the arriving tag).
//! The former is lossless under PFC; the latter drops lossless packets
//! because the PAUSE gates the wrong queue.

use tagger_bench::print_table;
use tagger_sim::experiments::fig8_priority_transition;

const END_NS: u64 = 5_000_000;

fn main() {
    let mut rows = Vec::new();
    for correct in [false, true] {
        let (report, _) = fig8_priority_transition(correct, END_NS).run();
        rows.push(vec![
            if correct {
                "new-tag (Fig 8b, correct)"
            } else {
                "old-tag (Fig 8a, default)"
            }
            .to_string(),
            report.lossless_drops.to_string(),
            report.pauses_sent.to_string(),
            format!("{:.2}", report.flows[0].tail_rate(5) / 1e9),
            format!("{:.2}", report.flows[1].tail_rate(5) / 1e9),
        ]);
    }
    print_table(
        "Fig 8: priority transition handling (bounced flow A shares the \
         T1->H1 bottleneck with B)",
        &[
            "egress_queue_mode",
            "lossless_drops",
            "pauses",
            "A_tail_gbps",
            "B_tail_gbps",
        ],
        &rows,
    );
}
