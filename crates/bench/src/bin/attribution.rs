//! **trigger attribution** — detection and attribution latency of the
//! in-band initial-trigger machinery, emitting `BENCH_attribution.json`.
//!
//! Runs the three deadlock scenarios the attribution pipeline is
//! specified against — the incast-fed two-cycle lock, the bounce-path
//! cycle, and the routing-loop cycle — across a sweep of watchdog poll
//! windows, and records per scenario the p50/p99 of:
//!
//! - **time-to-detect**: pause-claim epoch of the attributed trigger to
//!   the first watchdog trip, and
//! - **time-to-attribute**: pause-claim epoch to the first confirmed-SCC
//!   watchdog tick that produced the attribution.
//!
//! Every run must produce an attribution that passes its ground-truth
//! cross-check and names a member of the confirmed SCC; a misattribution
//! exits non-zero — a benchmark of wrong answers is not a benchmark.
//!
//! ```text
//! attribution [--out PATH]
//! ```
//!
//! All figures are seed-free and simulator-deterministic: reruns emit
//! byte-identical JSON.

use std::fmt::Write as _;
use std::process::ExitCode;
use tagger_fleet::percentile_us;
use tagger_sim::experiments::{
    cycle_flows, incast_two_cycle, routing_loop_watchdog, unsafe_identity_rules, watchdog_rescue,
};
use tagger_sim::SimReport;
use tagger_switch::WatchdogConfig;
use tagger_topo::ClosConfig;

/// Watchdog poll windows swept per scenario, in microseconds.
const WINDOWS_US: [u64; 6] = [100, 150, 200, 250, 300, 400];

struct Sample {
    time_to_detect_us: u64,
    time_to_attribute_us: u64,
}

fn sample(scenario: &str, window_us: u64, report: &SimReport) -> Result<Sample, String> {
    let wd = report
        .watchdog
        .as_ref()
        .ok_or_else(|| format!("{scenario} ({window_us} us): no watchdog report"))?;
    let trig = wd
        .trigger
        .as_ref()
        .ok_or_else(|| format!("{scenario} ({window_us} us): no attribution produced"))?;
    if !trig.matches_ground_truth {
        return Err(format!(
            "{scenario} ({window_us} us): attribution failed its ground-truth cross-check: {trig:?}"
        ));
    }
    if !trig.scc.contains(&trig.queue()) {
        return Err(format!(
            "{scenario} ({window_us} us): attributed queue {:?} outside its SCC",
            trig.queue()
        ));
    }
    let ttd = wd
        .time_to_detect()
        .ok_or_else(|| format!("{scenario} ({window_us} us): attributed but never tripped"))?;
    Ok(Sample {
        time_to_detect_us: ttd / 1_000,
        time_to_attribute_us: trig.time_to_attribute() / 1_000,
    })
}

fn run_scenario(name: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for window_us in WINDOWS_US {
        let window_ns = window_us * 1_000;
        let report = match name {
            "incast_two_cycle" => {
                let mut exp = incast_two_cycle(None, 12_000_000);
                exp.sim.arm_watchdog(WatchdogConfig::with_window(window_ns));
                exp.sim.run()
            }
            "bounce" => {
                let topo = ClosConfig::small().build();
                let rules = unsafe_identity_rules(&topo);
                let flows = cycle_flows(&topo, 4_000_000);
                let cfg = WatchdogConfig::with_window(window_ns);
                watchdog_rescue(&topo, &rules, flows, Some(cfg), 4_000_000)
                    .run()
                    .0
            }
            "routing_loop" => routing_loop_watchdog(window_ns, 4_000_000).sim.run(),
            _ => unreachable!("unknown scenario"),
        };
        samples.push(sample(name, window_us, &report)?);
    }
    Ok(samples)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_attribution.json".to_string());

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"trigger_attribution\",");
    let _ = writeln!(
        json,
        "  \"windows_us\": [{}],",
        WINDOWS_US.map(|w| w.to_string()).join(", ")
    );
    let scenarios = ["incast_two_cycle", "bounce", "routing_loop"];
    for (i, name) in scenarios.iter().enumerate() {
        let samples = match run_scenario(name) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("attribution: {e}");
                return ExitCode::from(1);
            }
        };
        let ttd: Vec<u64> = samples.iter().map(|s| s.time_to_detect_us).collect();
        let tta: Vec<u64> = samples.iter().map(|s| s.time_to_attribute_us).collect();
        println!(
            "{name}: {} run(s), time-to-detect p50 {} us / p99 {} us, \
             time-to-attribute p50 {} us / p99 {} us",
            samples.len(),
            percentile_us(&ttd, 50),
            percentile_us(&ttd, 99),
            percentile_us(&tta, 50),
            percentile_us(&tta, 99),
        );
        let _ = writeln!(json, "  \"{name}\": {{");
        let _ = writeln!(json, "    \"samples\": {},", samples.len());
        let _ = writeln!(
            json,
            "    \"time_to_detect_us\": {{ \"p50\": {}, \"p99\": {} }},",
            percentile_us(&ttd, 50),
            percentile_us(&ttd, 99)
        );
        let _ = writeln!(
            json,
            "    \"time_to_attribute_us\": {{ \"p50\": {}, \"p99\": {} }}",
            percentile_us(&tta, 50),
            percentile_us(&tta, 99)
        );
        let _ = writeln!(
            json,
            "  }}{}",
            if i + 1 < scenarios.len() { "," } else { "" }
        );
    }
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("attribution: cannot write {out_path}: {e}");
        return ExitCode::from(2);
    }
    println!("wrote {out_path}");
    ExitCode::SUCCESS
}
