//! **Queue dynamics** — what a deadlock looks like from inside a switch.
//!
//! Tracks the byte depth of the L1→S1 egress queue (a member of the
//! Figure 10 CBD cycle) through the deadlock run, with and without
//! Tagger. Without Tagger the queue fills and then flat-lines — frozen
//! bytes that will never move. With Tagger the same queue breathes:
//! PFC and the second priority keep it cycling between thresholds.

use tagger_bench::print_table;
use tagger_routing::Fib;
use tagger_sim::experiments::{testbed_switch_config, TESTBED_PFC_DELAY_NS};
use tagger_sim::{FlowSpec, SimConfig, Simulator};
use tagger_topo::{ClosConfig, FailureSet, NodeId};

const END_NS: u64 = 6_000_000;

fn run(with_tagger: bool) -> (Vec<Vec<u64>>, bool) {
    let topo = ClosConfig::small().build();
    let fib = Fib::shortest_path(&topo, &FailureSet::none());
    let (rules, queues) = if with_tagger {
        let t = tagger_core::clos::clos_tagging(&topo, 1).unwrap();
        (Some(t.rules().clone()), 2u8)
    } else {
        (None, 1)
    };
    let l1 = topo.expect_node("L1");
    let s1 = topo.expect_node("S1");
    let to_s1 = topo.port_towards(l1, s1).unwrap();
    let mut track = vec![(l1, to_s1, 0u8)];
    if with_tagger {
        track.push((l1, to_s1, 1)); // the bounce priority's queue
    }
    let cfg = SimConfig {
        switch: testbed_switch_config(queues),
        pfc_extra_delay_ns: TESTBED_PFC_DELAY_NS,
        track_queues: track,
        end_time_ns: END_NS,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(topo.clone(), fib, rules, cfg);
    let names = |p: &[&str]| -> Vec<NodeId> { p.iter().map(|n| topo.expect_node(n)).collect() };
    let blue = names(&["H1", "T1", "L1", "S1", "L3", "S2", "L4", "T4", "H13"]);
    let green = names(&["H9", "T3", "L3", "S2", "L1", "S1", "L2", "T1", "H1"]);
    sim.add_flow(FlowSpec::new(blue[0], *blue.last().unwrap(), 0).pinned(blue.clone()));
    sim.add_flow(FlowSpec::new(green[0], *green.last().unwrap(), END_NS / 5).pinned(green.clone()));
    let report = sim.run();
    (report.queue_series, report.deadlock.is_some())
}

fn main() {
    for with_tagger in [false, true] {
        let (series, deadlocked) = run(with_tagger);
        let mut rows = Vec::new();
        for (i, row) in series.iter().enumerate().step_by(2) {
            let mut cells = vec![((i as u64 + 1) * 100).to_string()];
            cells.extend(row.iter().map(|b| (b / 1000).to_string()));
            rows.push(cells);
        }
        let header: Vec<&str> = if with_tagger {
            vec!["time_us", "L1->S1 prio0 (KB)", "L1->S1 prio1 (KB)"]
        } else {
            vec!["time_us", "L1->S1 prio0 (KB)"]
        };
        print_table(
            &format!(
                "Queue dynamics at L1->S1 — {} Tagger (deadlock: {})",
                if with_tagger { "with" } else { "without" },
                deadlocked
            ),
            &header,
            &rows,
        );
    }
}
