//! **§5.3** — BCube tag counts.
//!
//! The paper: a k-level BCube with default routing needs only k tags
//! under Algorithm 2. BCube(n, k) has k+1 levels; its default
//! `BuildPathSet` routing uses all k+1 rotated digit-correction orders
//! per server pair, and intermediate *servers* forward packets — their
//! NIC ingress queues are part of the buffer-dependency graph. Reports
//! the generic pipeline's tag count under single-permutation routing
//! (layered, 1 tag) and full multi-path routing (levels tags).

use tagger_bench::print_table;
use tagger_core::{Elp, Tagging};
use tagger_routing::bcube_paths;
use tagger_topo::{bcube, BCubeConfig};

fn main() {
    let mut rows = Vec::new();
    for (n, k) in [(2usize, 1usize), (4, 1), (3, 2), (2, 3)] {
        let cfg = BCubeConfig { n, k };
        let topo = bcube(n, k);
        let single = Elp::from_paths(bcube_paths(&cfg, &topo, false));
        let multi = Elp::from_paths(bcube_paths(&cfg, &topo, true));
        let t_single = Tagging::from_elp(&topo, &single).expect("pipeline");
        let t_multi = Tagging::from_elp(&topo, &multi).expect("pipeline");
        rows.push(vec![
            format!("BCube({n},{k})"),
            cfg.num_servers().to_string(),
            cfg.num_switches().to_string(),
            (k + 1).to_string(),
            multi.len().to_string(),
            t_single.num_lossless_tags_on(&topo).to_string(),
            t_multi.num_lossless_tags_on(&topo).to_string(),
            t_multi.rules().max_rules_per_switch().to_string(),
        ]);
    }
    print_table(
        "BCube: tags needed by Algorithm 1+2 (paper 5.3: a BCube with L \
         levels and default multi-path routing needs L tags)",
        &[
            "fabric",
            "servers",
            "switches",
            "levels",
            "multipath_elp",
            "tags_single_perm",
            "tags_multipath",
            "max_rules_per_switch",
        ],
        &rows,
    );
}
