//! The paper's Figure 5 walk-through fixture.
//!
//! Three switches `A`, `B`, `C` in a triangle, with one server on each
//! (`D` on `A`, `E` on `B`, `F` on `C`). The ELP contains, for each
//! ordered server pair, both the direct two-switch route and the detour
//! through the third switch — the twelve paths listed in Fig. 5(a).
//!
//! Paper results this fixture reproduces:
//! - Algorithm 1 needs **3** lossless priorities at switches (Fig. 5(b),
//!   "we need three lossless priorities for the simple example");
//! - Algorithm 2 compresses them to **2** (Fig. 5(c), "the number of
//!   tags is reduced to two");
//! - the rule tables have the shape of Tables 3/4.

use tagger_core::Elp;
use tagger_routing::Path;
use tagger_topo::{Layer, Topology};

/// Builds the Fig. 5 topology. Port numbering per switch: port 0 to its
/// server, then ports to the other switches in alphabetical order.
pub fn topology() -> Topology {
    let mut t = Topology::new();
    let a = t.add_switch("A", Layer::Flat);
    let b = t.add_switch("B", Layer::Flat);
    let c = t.add_switch("C", Layer::Flat);
    let d = t.add_host("D");
    let e = t.add_host("E");
    let f = t.add_host("F");
    // Server links first so each switch's port 0 faces its server.
    t.connect(a, d);
    t.connect(b, e);
    t.connect(c, f);
    t.connect(a, b);
    t.connect(a, c);
    t.connect(b, c);
    t
}

/// The twelve ELP paths of Fig. 5(a).
pub fn elp(topo: &Topology) -> Elp {
    let routes: [&[&str]; 12] = [
        &["D", "A", "B", "E"],
        &["D", "A", "C", "B", "E"],
        &["E", "B", "A", "D"],
        &["E", "B", "C", "A", "D"],
        &["D", "A", "C", "F"],
        &["D", "A", "B", "C", "F"],
        &["F", "C", "A", "D"],
        &["F", "C", "B", "A", "D"],
        &["E", "B", "C", "F"],
        &["E", "B", "A", "C", "F"],
        &["F", "C", "B", "E"],
        &["F", "C", "A", "B", "E"],
    ];
    Elp::from_paths(routes.iter().map(|r| Path::from_names(topo, r)).collect())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use tagger_core::{greedy_minimize, tag_by_hop_count, Tagging};

    #[test]
    fn brute_force_needs_three_priorities() {
        let topo = topology();
        let g = tag_by_hop_count(&topo, &elp(&topo));
        g.verify().unwrap();
        // Longest path D->A->C->B->E has 4 hops; switch-ingress tags are
        // 1..=3 (tag 4 only appears on destination servers, Fig 5b).
        assert_eq!(g.num_lossless_tags(&topo), 3);
        assert_eq!(g.max_tag(), Some(tagger_core::Tag(4)));
    }

    #[test]
    fn greedy_reduces_to_two_priorities() {
        let topo = topology();
        let g = tag_by_hop_count(&topo, &elp(&topo));
        let merged = greedy_minimize(&topo, &g);
        merged.verify().unwrap();
        assert_eq!(merged.num_lossless_tags(&topo), 2);
    }

    #[test]
    fn full_pipeline_keeps_elp_lossless() {
        let topo = topology();
        let elp = elp(&topo);
        let t = Tagging::from_elp(&topo, &elp).unwrap();
        assert_eq!(t.num_lossless_tags_on(&topo), 2);
        assert!(!t.used_fallback());
        t.check_elp_lossless(&topo, &elp).unwrap();
    }

    #[test]
    fn table3_rule_dump_is_pinned() {
        // Golden test for the Table 3 shape: under Algorithm 1, each
        // switch's rules are identical by symmetry — port 0 faces the
        // server, ports 1 and 2 the peer switches.
        use tagger_core::RuleSet;
        let topo = topology();
        let g = tag_by_hop_count(&topo, &elp(&topo));
        let rules = RuleSet::from_graph(&topo, &g).unwrap();
        for sw in ["A", "B", "C"] {
            let rows: Vec<String> = rules
                .rules_for(topo.expect_node(sw))
                .into_iter()
                .map(|r| format!("{} {} {} {}", r.tag, r.in_port, r.out_port, r.new_tag))
                .collect();
            assert_eq!(
                rows,
                vec![
                    "1 p0 p1 2", // fresh from the server, first hop
                    "1 p0 p2 2",
                    "2 p1 p0 3", // second hop: deliver or forward on
                    "2 p1 p2 3",
                    "2 p2 p0 3",
                    "2 p2 p1 3",
                    "3 p1 p0 4", // third hop: deliver to the server
                    "3 p2 p0 4",
                ],
                "switch {sw}"
            );
        }
    }

    #[test]
    fn single_priority_would_deadlock() {
        // The triangle detour paths alone create a CBD on one priority —
        // the reason the example needs two tags at all.
        let topo = topology();
        assert!(tagger_core::cbd::has_cbd(&topo, elp(&topo).paths()));
    }
}
