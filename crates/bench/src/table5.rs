//! Table 5 runner: Tagger scalability on Jellyfish fabrics.
//!
//! For each row, build a Jellyfish topology with half the ports wired to
//! servers (as in the paper), enumerate the shortest-path ELP, run
//! Algorithms 1+2 with rule compilation, compress to TCAM entries, and
//! report the number of lossless priorities and the largest per-switch
//! table — the two scarce hardware resources (paper §3.3, §8.2).

use tagger_core::tcam::{Compression, TcamProgram};
use tagger_core::{Elp, Tagging};
use tagger_routing::{bounce_paths_between_capped, shortest_paths_all_pairs, Path};
use tagger_topo::{FailureSet, JellyfishConfig, Topology};

/// One row of the Table 5 reproduction.
#[derive(Clone, Debug)]
pub struct Table5Row {
    /// Switch count.
    pub switches: usize,
    /// Ports per switch.
    pub ports: usize,
    /// Paths in the ELP.
    pub elp_paths: usize,
    /// Longest lossless route (hops).
    pub longest_lossless: usize,
    /// Lossless priorities required.
    pub priorities: usize,
    /// Largest per-switch exact-match rule table.
    pub max_rules: usize,
    /// Largest per-switch TCAM table after joint compression.
    pub max_tcam: usize,
    /// Whether the pipeline's repair pass added rules / fell back.
    pub repairs: usize,
    /// Whether the brute-force fallback was needed (never, in practice).
    pub fallback: bool,
}

/// Runs one Table 5 row: `switches` switches with `ports` ports each,
/// shortest-path ELP capped at `paths_per_pair` per ordered switch pair,
/// plus `extra_random_paths` additional random paths (the paper's last
/// row adds 1000).
pub fn run_row(
    switches: usize,
    ports: usize,
    paths_per_pair: usize,
    extra_random_paths: usize,
    seed: u64,
) -> Table5Row {
    let topo = JellyfishConfig::half_servers(switches, ports, seed).build();
    let mut paths = shortest_paths_all_pairs(&topo, &FailureSet::none(), paths_per_pair, false);
    if extra_random_paths > 0 {
        paths.extend(random_paths(&topo, extra_random_paths, seed ^ 0x5eed));
    }
    let elp = Elp::from_paths(paths);
    run_elp_row(&topo, elp, switches, ports)
}

/// Runs the algorithms over a prebuilt ELP and packages the row.
pub fn run_elp_row(topo: &Topology, elp: Elp, switches: usize, ports: usize) -> Table5Row {
    let longest = elp.max_hops();
    let n_paths = elp.len();
    let tagging = Tagging::from_elp(topo, &elp).expect("tagging pipeline");
    let tcam = TcamProgram::compile(topo, tagging.rules(), Compression::Joint);
    Table5Row {
        switches,
        ports,
        elp_paths: n_paths,
        longest_lossless: longest,
        priorities: tagging.num_lossless_tags_on(topo),
        max_rules: tagging.rules().max_rules_per_switch(),
        max_tcam: tcam.max_entries_per_switch(),
        repairs: tagging.repairs(),
        fallback: tagging.used_fallback(),
    }
}

/// Deterministic "operator-chosen redundant paths": random loop-free
/// switch-to-switch walks, the Table 5 footnote's "additional 1000 random
/// paths".
pub fn random_paths(topo: &Topology, count: usize, seed: u64) -> Vec<Path> {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let switches: Vec<_> = topo.switch_ids().collect();
    let mut out = Vec::with_capacity(count);
    let mut guard = 0usize;
    while out.len() < count && guard < count * 100 {
        guard += 1;
        let start = switches[rng.random_range(0..switches.len())];
        let mut nodes = vec![start];
        let len = rng.random_range(2..6usize);
        'walk: for _ in 0..len {
            let here = *nodes.last().expect("walk starts non-empty");
            let candidates: Vec<_> = topo
                .neighbors(here)
                .map(|(_, _, n)| n)
                .filter(|n| topo.node(*n).kind == tagger_topo::NodeKind::Switch)
                .filter(|n| !nodes.contains(n))
                .collect();
            if candidates.is_empty() {
                break 'walk;
            }
            nodes.push(candidates[rng.random_range(0..candidates.len())]);
        }
        if nodes.len() >= 2 {
            if let Ok(p) = Path::new(topo, nodes) {
                out.push(p);
            }
        }
    }
    out
}

/// A bounce-ELP row over a Clos fabric, for the `clos_optimality` binary:
/// returns (k, priorities used by the optimal construction, priorities
/// used by the generic greedy pipeline).
///
/// The sampled ELP takes up to `cap_per_pair` paths per host pair *per
/// exact bounce count* `0..=k`, so every bounce class is represented —
/// otherwise a small cap could silently degrade the ELP to fewer bounces
/// and make the greedy column incomparable to the `k+1` lower bound.
pub fn clos_bounce_row(topo: &Topology, k: usize, cap_per_pair: usize) -> (usize, usize, usize) {
    let optimal = tagger_core::clos::clos_tagging(topo, k).expect("clos fabric");
    let paths = {
        let hosts: Vec<_> = topo.host_ids().collect();
        let mut v = Vec::new();
        for &s in &hosts {
            for &d in &hosts {
                if s == d {
                    continue;
                }
                for j in 0..=k {
                    let all =
                        bounce_paths_between_capped(topo, &FailureSet::none(), s, d, j, usize::MAX);
                    v.extend(
                        all.into_iter()
                            .filter(|p| p.bounces(topo) == j)
                            .take(cap_per_pair),
                    );
                }
            }
        }
        v
    };
    let elp = Elp::from_paths(paths);
    let generic = Tagging::from_elp(topo, &elp).expect("pipeline");
    (
        k,
        optimal.num_lossless_tags_on(topo),
        generic.num_lossless_tags_on(topo),
    )
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn small_jellyfish_row_is_cheap() {
        let row = run_row(10, 6, 1, 0, 42);
        assert_eq!(row.switches, 10);
        assert!(row.priorities <= 3, "priorities {}", row.priorities);
        assert!(!row.fallback);
        assert!(row.max_tcam <= row.max_rules);
        assert!(row.longest_lossless >= 1);
    }

    #[test]
    fn random_paths_are_valid_and_deterministic() {
        let topo = JellyfishConfig::half_servers(15, 6, 9).build();
        let a = random_paths(&topo, 50, 1);
        let b = random_paths(&topo, 50, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
    }

    #[test]
    fn clos_row_matches_k_plus_one() {
        let topo = tagger_topo::ClosConfig::small().build();
        let (_, optimal, generic) = clos_bounce_row(&topo, 1, 4);
        assert_eq!(optimal, 2);
        assert!(generic >= optimal && generic <= 3);
    }
}
