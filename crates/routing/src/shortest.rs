//! BFS shortest-path computation and enumeration.
//!
//! Used for unstructured fabrics (Jellyfish, paper Table 5) where up-down
//! routing does not exist, and for post-failure reroute computation on any
//! fabric.

use crate::Path;
use std::collections::VecDeque;
use tagger_topo::{FailureSet, NodeId, NodeKind, Topology};

/// Single-source shortest-path state: distances and the shortest-path DAG
/// (all predecessors on some shortest path).
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    /// Source of the BFS.
    pub src: NodeId,
    /// `dist[n]` = hop distance from `src` to node `n`; `u32::MAX` if
    /// unreachable.
    pub dist: Vec<u32>,
    /// `preds[n]` = all predecessors of `n` on shortest paths from `src`,
    /// in deterministic (BFS/port) order.
    pub preds: Vec<Vec<NodeId>>,
}

impl ShortestPaths {
    /// Hop distance to `n`, or `None` if unreachable.
    pub fn distance(&self, n: NodeId) -> Option<u32> {
        let d = self.dist[n.index()];
        (d != u32::MAX).then_some(d)
    }
}

/// Runs BFS from `src` over live links. Hosts do not forward: BFS never
/// expands *through* a host (other than the source itself), matching real
/// networks where servers are not transit nodes.
pub fn shortest_path_dag(topo: &Topology, failures: &FailureSet, src: NodeId) -> ShortestPaths {
    let n = topo.num_nodes();
    let mut dist = vec![u32::MAX; n];
    let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    dist[src.index()] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        // Only the source may be a host; hosts do not forward.
        if u != src && topo.node(u).kind == NodeKind::Host {
            continue;
        }
        let du = dist[u.index()];
        for (_, _, v) in failures.live_neighbors(topo, u) {
            let dv = &mut dist[v.index()];
            if *dv == u32::MAX {
                *dv = du + 1;
                preds[v.index()].push(u);
                queue.push_back(v);
            } else if *dv == du + 1 {
                preds[v.index()].push(u);
            }
        }
    }
    ShortestPaths { src, dist, preds }
}

/// Enumerates up to `cap` shortest paths from `src` to `dst`, in
/// deterministic order. Returns an empty vector if `dst` is unreachable.
pub fn shortest_paths_between(
    topo: &Topology,
    failures: &FailureSet,
    src: NodeId,
    dst: NodeId,
    cap: usize,
) -> Vec<Path> {
    let sp = shortest_path_dag(topo, failures, src);
    enumerate_from_dag(topo, &sp, dst, cap)
}

/// Enumerates up to `cap` shortest paths to `dst` from a precomputed
/// shortest-path DAG. Useful when many destinations share one source.
pub fn enumerate_from_dag(
    topo: &Topology,
    sp: &ShortestPaths,
    dst: NodeId,
    cap: usize,
) -> Vec<Path> {
    let mut out = Vec::new();
    if sp.distance(dst).is_none() || dst == sp.src || cap == 0 {
        return out;
    }
    // Walk predecessors from dst back to src, emitting paths in DFS order.
    let mut rev = vec![dst];
    walk(topo, sp, dst, cap, &mut rev, &mut out);
    out
}

fn walk(
    topo: &Topology,
    sp: &ShortestPaths,
    node: NodeId,
    cap: usize,
    rev: &mut Vec<NodeId>,
    out: &mut Vec<Path>,
) {
    if out.len() >= cap {
        return;
    }
    if node == sp.src {
        let nodes: Vec<NodeId> = rev.iter().rev().copied().collect();
        out.push(Path::new(topo, nodes).expect("BFS DAG paths are simple"));
        return;
    }
    for &p in &sp.preds[node.index()] {
        if out.len() >= cap {
            return;
        }
        rev.push(p);
        walk(topo, sp, p, cap, rev, out);
        rev.pop();
    }
}

/// Enumerates up to `cap_per_pair` shortest paths for every ordered pair
/// of distinct *hosts* (if `between_hosts`) or *switches* (otherwise) —
/// the shortest-path ELP used for Jellyfish fabrics.
pub fn shortest_paths_all_pairs(
    topo: &Topology,
    failures: &FailureSet,
    cap_per_pair: usize,
    between_hosts: bool,
) -> Vec<Path> {
    let endpoints: Vec<NodeId> = if between_hosts {
        topo.host_ids().collect()
    } else {
        topo.switch_ids().collect()
    };
    let mut out = Vec::new();
    for &s in &endpoints {
        let sp = shortest_path_dag(topo, failures, s);
        for &d in &endpoints {
            if s != d {
                out.extend(enumerate_from_dag(topo, &sp, d, cap_per_pair));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use tagger_topo::{ClosConfig, JellyfishConfig};

    #[test]
    fn clos_distances_match_structure() {
        let t = ClosConfig::small().build();
        let f = FailureSet::none();
        let sp = shortest_path_dag(&t, &f, t.expect_node("H1"));
        assert_eq!(sp.distance(t.expect_node("T1")), Some(1));
        assert_eq!(sp.distance(t.expect_node("L1")), Some(2));
        assert_eq!(sp.distance(t.expect_node("S1")), Some(3));
        assert_eq!(sp.distance(t.expect_node("H9")), Some(6));
        assert_eq!(sp.distance(t.expect_node("H2")), Some(2));
    }

    #[test]
    fn hosts_do_not_forward() {
        // H1 and H2 share T1; distance H1->H2 is 2, and no path may pass
        // through a third host.
        let t = ClosConfig::small().build();
        let f = FailureSet::none();
        let paths =
            shortest_paths_between(&t, &f, t.expect_node("H1"), t.expect_node("H2"), usize::MAX);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].hops(), 2);
    }

    #[test]
    fn ecmp_count_cross_pod() {
        let t = ClosConfig::small().build();
        let f = FailureSet::none();
        let paths =
            shortest_paths_between(&t, &f, t.expect_node("H1"), t.expect_node("H9"), usize::MAX);
        // 2 leaves x 2 spines x 2 leaves = 8 equal-cost 6-hop paths.
        assert_eq!(paths.len(), 8);
        for p in &paths {
            assert_eq!(p.hops(), 6);
        }
    }

    #[test]
    fn failure_lengthens_shortest_path() {
        let t = ClosConfig::small().build();
        let mut f = FailureSet::none();
        // Cut T1's uplink to L1; H1->H9 still 6 hops via L2. Cut both
        // uplinks? Then T1 is isolated from the fabric.
        f.fail_between(&t, "T1", "L1");
        let paths =
            shortest_paths_between(&t, &f, t.expect_node("H1"), t.expect_node("H9"), usize::MAX);
        assert_eq!(paths.len(), 4); // only via L2 now
        for p in &paths {
            assert_eq!(p.hops(), 6);
        }
    }

    #[test]
    fn reroute_can_violate_updown() {
        // Fail L3-T3 and L4-T3: H9 (under T3) becomes unreachable... so
        // instead fail L1-T1 and look at S1's route to H1: S1 -> L1 is now
        // a dead descent; shortest goes S1 -> L2 -> T1. From H9, paths
        // avoid L1 entirely and stay up-down. But from a vantage *at* L1,
        // the shortest path to H1 must bounce up through a spine.
        let t = ClosConfig::small().build();
        let mut f = FailureSet::none();
        f.fail_between(&t, "L1", "T1");
        let paths =
            shortest_paths_between(&t, &f, t.expect_node("L1"), t.expect_node("H1"), usize::MAX);
        assert!(!paths.is_empty());
        for p in &paths {
            // L1 -> S -> L2 -> T1 -> H1 or L1 -> T2 -> L2 -> T1 -> H1.
            assert_eq!(p.hops(), 4);
        }
        // At least one of them goes up through a spine (a bounce for
        // traffic that was descending through L1).
        assert!(paths
            .iter()
            .any(|p| p.nodes().contains(&t.expect_node("S1"))
                || p.nodes().contains(&t.expect_node("S2"))));
    }

    #[test]
    fn unreachable_returns_empty() {
        let t = ClosConfig::small().build();
        let mut f = FailureSet::none();
        f.fail_between(&t, "T1", "L1");
        f.fail_between(&t, "T1", "L2");
        let paths =
            shortest_paths_between(&t, &f, t.expect_node("H1"), t.expect_node("H9"), usize::MAX);
        assert!(paths.is_empty());
    }

    #[test]
    fn jellyfish_all_pairs_switches() {
        let t = JellyfishConfig::half_servers(10, 6, 5).build();
        let f = FailureSet::none();
        let paths = shortest_paths_all_pairs(&t, &f, 1, false);
        // One path per ordered switch pair (graph is connected).
        assert_eq!(paths.len(), 10 * 9);
    }

    #[test]
    fn cap_limits_enumeration() {
        let t = ClosConfig::small().build();
        let f = FailureSet::none();
        let paths = shortest_paths_between(&t, &f, t.expect_node("H1"), t.expect_node("H9"), 3);
        assert_eq!(paths.len(), 3);
    }
}
