//! Destination-based forwarding tables (FIBs) with ECMP and overrides.
//!
//! The simulator forwards hop-by-hop through a [`Fib`], exactly like a
//! real fabric running BGP/OSPF: per-switch, per-destination next-hop port
//! sets. Overrides let experiments inject the pathologies the paper
//! studies — a stale route creating the T1↔L1 loop of Figure 11, or a
//! pinned bounce reroute as in Figure 3.

use crate::{shortest_path_dag, Path};
use std::collections::BTreeMap;
use tagger_topo::{FailureSet, NodeId, NodeKind, PortId, Topology};

/// How a forwarding decision picks among equal-cost ports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EcmpMode {
    /// Always the lowest-numbered port. Deterministic and easy to reason
    /// about in tests.
    First,
    /// Per-flow hashing: port = `hash % n`. Deterministic per flow and
    /// spreads flows like real ECMP.
    FlowHash,
}

/// A forwarding table: for each `(switch, destination-host)` pair, the set
/// of equal-cost egress ports.
#[derive(Clone, Debug, Default)]
pub struct Fib {
    entries: BTreeMap<(NodeId, NodeId), Vec<PortId>>,
}

impl Fib {
    /// Builds a shortest-path FIB toward every host over live links —
    /// the steady state a converged routing protocol would reach. On Clos
    /// fabrics this yields up-down routing in the failure-free case and
    /// bounce reroutes when downlinks fail, matching the paper's §3.2
    /// observation that reroutes violate up-down routing.
    pub fn shortest_path(topo: &Topology, failures: &FailureSet) -> Fib {
        let mut fib = Fib::default();
        for dst in topo.host_ids() {
            let sp = shortest_path_dag(topo, failures, dst);
            for sw in topo.switch_ids() {
                let Some(d_sw) = sp.distance(sw) else {
                    continue;
                };
                let mut ports: Vec<PortId> = Vec::new();
                for (port, _, v) in failures.live_neighbors(topo, sw) {
                    // Forward only into switches, or into the destination
                    // host itself.
                    if v != dst && topo.node(v).kind == NodeKind::Host {
                        continue;
                    }
                    if sp.distance(v) == Some(d_sw.wrapping_sub(1)) {
                        ports.push(port);
                    }
                }
                if !ports.is_empty() {
                    fib.entries.insert((sw, dst), ports);
                }
            }
        }
        fib
    }

    /// Builds the FIB a fabric has *immediately after* `failures`, before
    /// the routing protocol reconverges: every switch still uses its
    /// healthy (pre-failure) shortest-path next hops, except that entries
    /// whose own link died are replaced by a local detour — the live
    /// neighbor(s) closest to the destination by *healthy* distance.
    ///
    /// On a Clos this produces exactly the paper's bounce behaviour
    /// (§3.2/§4.2): a leaf whose downlink died sends the packet back up.
    pub fn local_reroute(topo: &Topology, failures: &FailureSet) -> Fib {
        let healthy = Fib::shortest_path(topo, &FailureSet::none());
        let mut fib = Fib::default();
        for dst in topo.host_ids() {
            let sp = shortest_path_dag(topo, &FailureSet::none(), dst);
            for sw in topo.switch_ids() {
                let installed = healthy.next_ports(sw, dst);
                if installed.is_empty() {
                    continue;
                }
                let live: Vec<PortId> = installed
                    .iter()
                    .copied()
                    .filter(|&p| {
                        topo.node(sw)
                            .link_at(p)
                            .is_some_and(|l| !failures.is_failed(l))
                    })
                    .collect();
                if !live.is_empty() {
                    fib.entries.insert((sw, dst), live);
                    continue;
                }
                // All installed next hops died: local detour to the live
                // neighbor(s) with minimal healthy distance.
                let mut best: Option<u32> = None;
                let mut ports: Vec<PortId> = Vec::new();
                for (port, _, v) in failures.live_neighbors(topo, sw) {
                    if v != dst && topo.node(v).kind == NodeKind::Host {
                        continue;
                    }
                    let Some(d) = sp.distance(v) else { continue };
                    match best {
                        Some(b) if d > b => {}
                        Some(b) if d == b => ports.push(port),
                        _ => {
                            best = Some(d);
                            ports = vec![port];
                        }
                    }
                }
                if !ports.is_empty() {
                    fib.entries.insert((sw, dst), ports);
                }
            }
        }
        fib
    }

    /// Builds a FIB from an explicit path set: each path contributes its
    /// hop-by-hop next-hop ports. Useful for pinning traffic to an ELP.
    pub fn from_paths(topo: &Topology, paths: &[Path]) -> Fib {
        let mut fib = Fib::default();
        for p in paths {
            let dst = p.dst();
            for (a, b) in p.hop_pairs() {
                if topo.node(a).kind != NodeKind::Switch {
                    continue;
                }
                let port = topo
                    .port_towards(a, b)
                    .expect("validated path hop must be adjacent");
                let e = fib.entries.entry((a, dst)).or_default();
                if !e.contains(&port) {
                    e.push(port);
                }
            }
        }
        for ports in fib.entries.values_mut() {
            ports.sort_unstable();
        }
        fib
    }

    /// The equal-cost ports `sw` may use toward `dst` (empty if no route).
    pub fn next_ports(&self, sw: NodeId, dst: NodeId) -> &[PortId] {
        self.entries
            .get(&(sw, dst))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Picks one port for a given flow hash, or `None` if no route.
    pub fn select(
        &self,
        sw: NodeId,
        dst: NodeId,
        flow_hash: u64,
        mode: EcmpMode,
    ) -> Option<PortId> {
        let ports = self.next_ports(sw, dst);
        match (ports.len(), mode) {
            (0, _) => None,
            (_, EcmpMode::First) => Some(ports[0]),
            (n, EcmpMode::FlowHash) => Some(ports[flow_hash as usize % n]),
        }
    }

    /// Replaces the route of `(sw, dst)` with exactly `ports`. Empty
    /// `ports` removes the route (blackhole).
    pub fn set_override(&mut self, sw: NodeId, dst: NodeId, ports: Vec<PortId>) {
        if ports.is_empty() {
            self.entries.remove(&(sw, dst));
        } else {
            self.entries.insert((sw, dst), ports);
        }
    }

    /// Points `sw`'s route for `dst` at the direct neighbor `via` — the
    /// "bad route" primitive used to create the routing loop of Figure 11.
    ///
    /// # Panics
    /// Panics if `sw` and `via` are not adjacent.
    pub fn set_override_towards(&mut self, topo: &Topology, sw: NodeId, dst: NodeId, via: NodeId) {
        let port = topo
            .port_towards(sw, via)
            .unwrap_or_else(|| panic!("{sw} and {via} are not adjacent"));
        self.set_override(sw, dst, vec![port]);
    }

    /// Number of `(switch, destination)` entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Walks a packet from `src` to `dst` using [`EcmpMode::First`],
    /// returning the node sequence — diagnostic helper to see what route
    /// the FIB actually realizes. Stops after `max_hops` (loop guard).
    pub fn trace(&self, topo: &Topology, src: NodeId, dst: NodeId, max_hops: usize) -> Vec<NodeId> {
        let mut route = vec![src];
        let mut here = src;
        // Hosts hand the packet to their ToR first.
        if topo.node(src).kind == NodeKind::Host {
            match topo.attached_switch(src) {
                Some(sw) => {
                    route.push(sw);
                    here = sw;
                }
                None => return route,
            }
        }
        while here != dst && route.len() <= max_hops {
            let Some(port) = self.select(here, dst, 0, EcmpMode::First) else {
                break;
            };
            let Some(peer) = topo.peer_of(tagger_topo::GlobalPort::new(here, port)) else {
                break;
            };
            route.push(peer.node);
            here = peer.node;
        }
        route
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use tagger_topo::ClosConfig;

    #[test]
    fn shortest_path_fib_reaches_all_hosts() {
        let t = ClosConfig::small().build();
        let fib = Fib::shortest_path(&t, &FailureSet::none());
        for src in t.host_ids() {
            for dst in t.host_ids() {
                if src == dst {
                    continue;
                }
                let route = fib.trace(&t, src, dst, 16);
                assert_eq!(*route.last().unwrap(), dst, "no route {src}->{dst}");
            }
        }
    }

    #[test]
    fn healthy_clos_fib_is_updown() {
        let t = ClosConfig::small().build();
        let fib = Fib::shortest_path(&t, &FailureSet::none());
        let route = fib.trace(&t, t.expect_node("H1"), t.expect_node("H9"), 16);
        let p = Path::new(&t, route).unwrap();
        assert!(p.is_updown(&t));
        assert_eq!(p.hops(), 6);
    }

    #[test]
    fn ecmp_spreads_flows() {
        let t = ClosConfig::small().build();
        let fib = Fib::shortest_path(&t, &FailureSet::none());
        let t1 = t.expect_node("T1");
        let h9 = t.expect_node("H9");
        let ports = fib.next_ports(t1, h9);
        assert_eq!(ports.len(), 2); // two uplinks
        let a = fib.select(t1, h9, 0, EcmpMode::FlowHash).unwrap();
        let b = fib.select(t1, h9, 1, EcmpMode::FlowHash).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn failure_reroute_goes_around() {
        let t = ClosConfig::small().build();
        let mut f = FailureSet::none();
        f.fail_between(&t, "T1", "L1");
        let fib = Fib::shortest_path(&t, &f);
        let route = fib.trace(&t, t.expect_node("H9"), t.expect_node("H1"), 16);
        assert_eq!(*route.last().unwrap(), t.expect_node("H1"));
        // Route must avoid the failed link: T1 is reached via L2 only.
        let l1 = t.expect_node("L1");
        let t1 = t.expect_node("T1");
        for w in route.windows(2) {
            assert!(
                !(w[0] == l1 && w[1] == t1 || w[0] == t1 && w[1] == l1),
                "route uses failed link"
            );
        }
    }

    #[test]
    fn override_creates_loop() {
        let t = ClosConfig::small().build();
        let mut fib = Fib::shortest_path(&t, &FailureSet::none());
        let t1 = t.expect_node("T1");
        let l1 = t.expect_node("L1");
        let h5 = t.expect_node("H5");
        // Bad route: L1 sends H5-bound traffic back down to T1 (Fig 11).
        fib.set_override_towards(&t, l1, h5, t1);
        // And make T1 prefer L1 so that the loop closes.
        fib.set_override_towards(&t, t1, h5, l1);
        let route = fib.trace(&t, t.expect_node("H1"), h5, 10);
        assert!(route.len() > 10, "expected loop, got {route:?}");
        // The tail alternates T1, L1.
        let tail = &route[route.len() - 4..];
        assert!(tail.contains(&t1) && tail.contains(&l1));
    }

    #[test]
    fn local_reroute_bounces_at_dead_downlink() {
        let t = ClosConfig::small().build();
        let mut f = FailureSet::none();
        f.fail_between(&t, "L1", "T1");
        let fib = Fib::local_reroute(&t, &f);
        let l1 = t.expect_node("L1");
        let h1 = t.expect_node("H1");
        // L1's only healthy next hop toward H1 was T1; the detour goes to
        // the live neighbors at healthy distance 3: S1, S2 and T2.
        let ports = fib.next_ports(l1, h1);
        assert!(!ports.is_empty());
        for &p in ports {
            let peer = t.peer_of(tagger_topo::GlobalPort::new(l1, p)).unwrap().node;
            assert_ne!(peer, t.expect_node("T1"));
        }
        // Spines still send toward L1 (they haven't converged).
        let s1 = t.expect_node("S1");
        let spine_ports = fib.next_ports(s1, h1);
        assert_eq!(
            spine_ports,
            Fib::shortest_path(&t, &FailureSet::none()).next_ports(s1, h1)
        );
    }

    #[test]
    fn local_reroute_equals_healthy_without_failures() {
        let t = ClosConfig::small().build();
        let healthy = Fib::shortest_path(&t, &FailureSet::none());
        let local = Fib::local_reroute(&t, &FailureSet::none());
        for sw in t.switch_ids() {
            for dst in t.host_ids() {
                assert_eq!(healthy.next_ports(sw, dst), local.next_ports(sw, dst));
            }
        }
    }

    #[test]
    fn from_paths_pins_routes() {
        let t = ClosConfig::small().build();
        let p = Path::from_names(&t, &["H1", "T1", "L1", "S1", "L3", "T3", "H9"]);
        let fib = Fib::from_paths(&t, &[p]);
        let route = fib.trace(&t, t.expect_node("H1"), t.expect_node("H9"), 16);
        let names: Vec<&str> = route.iter().map(|&n| t.node(n).name.as_str()).collect();
        assert_eq!(names, ["H1", "T1", "L1", "S1", "L3", "T3", "H9"]);
    }

    #[test]
    fn blackhole_override_removes_route() {
        let t = ClosConfig::small().build();
        let mut fib = Fib::shortest_path(&t, &FailureSet::none());
        let t1 = t.expect_node("T1");
        let h9 = t.expect_node("H9");
        fib.set_override(t1, h9, vec![]);
        assert!(fib.next_ports(t1, h9).is_empty());
        let route = fib.trace(&t, t.expect_node("H1"), h9, 16);
        assert_eq!(*route.last().unwrap(), t1); // stops at the blackhole
    }
}
