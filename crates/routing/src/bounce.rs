//! k-bounce path enumeration: the ELP expansion of paper §4.3.
//!
//! A *bounce* is a down→up turn in the layer hierarchy — the signature of
//! a packet rerouted around a failed downlink. The operator who wants
//! traffic to survive up to `k` such reroutes losslessly includes all
//! `≤ k`-bounce paths in the ELP; Tagger then needs `k + 1` lossless
//! priorities on Clos (paper §4.4).

use crate::Path;
use tagger_topo::{FailureSet, NodeId, NodeKind, Topology};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    Up,
    Down,
}

/// Enumerates all loop-free paths from `src` to `dst` with at most
/// `max_bounces` down→up turns. `max_bounces = 0` yields exactly the
/// up-down (valley-free) paths.
///
/// Lateral hops (between equal-rank or unranked nodes) are excluded:
/// bounce semantics are only defined on layered fabrics. Intermediate
/// nodes must be switches. Results come in deterministic DFS order.
pub fn bounce_paths_between(
    topo: &Topology,
    failures: &FailureSet,
    src: NodeId,
    dst: NodeId,
    max_bounces: usize,
) -> Vec<Path> {
    bounce_paths_between_capped(topo, failures, src, dst, max_bounces, usize::MAX)
}

/// Like [`bounce_paths_between`] but stops after `cap` paths — useful on
/// larger fabrics where the k-bounce path count explodes combinatorially.
pub fn bounce_paths_between_capped(
    topo: &Topology,
    failures: &FailureSet,
    src: NodeId,
    dst: NodeId,
    max_bounces: usize,
    cap: usize,
) -> Vec<Path> {
    let mut out = Vec::new();
    if src == dst || cap == 0 {
        return out;
    }
    let mut visited = vec![false; topo.num_nodes()];
    visited[src.index()] = true;
    let mut stack = vec![src];
    dfs(
        topo,
        failures,
        dst,
        max_bounces,
        cap,
        Phase::Up,
        0,
        &mut stack,
        &mut visited,
        &mut out,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    topo: &Topology,
    failures: &FailureSet,
    dst: NodeId,
    max_bounces: usize,
    cap: usize,
    phase: Phase,
    bounces: usize,
    stack: &mut Vec<NodeId>,
    visited: &mut [bool],
    out: &mut Vec<Path>,
) {
    if out.len() >= cap {
        return;
    }
    let here = *stack.last().expect("DFS stack starts with the source");
    for (_, _, next) in failures.live_neighbors(topo, here) {
        if out.len() >= cap {
            return;
        }
        if visited[next.index()] {
            continue;
        }
        // Classify the hop; lateral hops are not part of up-down routing.
        let (next_phase, next_bounces) = if topo.is_up_hop(here, next) {
            match phase {
                Phase::Up => (Phase::Up, bounces),
                Phase::Down => {
                    if bounces + 1 > max_bounces {
                        continue;
                    }
                    (Phase::Up, bounces + 1)
                }
            }
        } else if topo.is_down_hop(here, next) {
            (Phase::Down, bounces)
        } else {
            continue;
        };
        if next == dst {
            stack.push(next);
            out.push(Path::new(topo, stack.clone()).expect("DFS builds valid loop-free paths"));
            stack.pop();
            continue;
        }
        // Only switches forward traffic.
        if topo.node(next).kind != NodeKind::Switch {
            continue;
        }
        visited[next.index()] = true;
        stack.push(next);
        dfs(
            topo,
            failures,
            dst,
            max_bounces,
            cap,
            next_phase,
            next_bounces,
            stack,
            visited,
            out,
        );
        stack.pop();
        visited[next.index()] = false;
    }
}

/// Enumerates `≤ max_bounces`-bounce paths between every ordered pair of
/// distinct hosts, capping at `cap_per_pair` paths per pair
/// (`usize::MAX` for no cap).
pub fn all_paths_with_bounces(
    topo: &Topology,
    failures: &FailureSet,
    max_bounces: usize,
    cap_per_pair: usize,
) -> Vec<Path> {
    let hosts: Vec<NodeId> = topo.host_ids().collect();
    let mut out = Vec::new();
    for &s in &hosts {
        for &d in &hosts {
            if s != d {
                out.extend(bounce_paths_between_capped(
                    topo,
                    failures,
                    s,
                    d,
                    max_bounces,
                    cap_per_pair,
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use tagger_topo::ClosConfig;

    #[test]
    fn zero_bounce_equals_updown() {
        let t = ClosConfig::small().build();
        let f = FailureSet::none();
        let h1 = t.expect_node("H1");
        let h9 = t.expect_node("H9");
        for p in bounce_paths_between(&t, &f, h1, h9, 0) {
            assert_eq!(p.bounces(&t), 0);
        }
    }

    #[test]
    fn one_bounce_superset_of_updown() {
        let t = ClosConfig::small().build();
        let f = FailureSet::none();
        let h1 = t.expect_node("H1");
        let h9 = t.expect_node("H9");
        let zero = bounce_paths_between(&t, &f, h1, h9, 0);
        let one = bounce_paths_between(&t, &f, h1, h9, 1);
        assert!(one.len() > zero.len());
        for p in &zero {
            assert!(one.contains(p), "up-down path missing from 1-bounce set");
        }
        for p in &one {
            assert!(p.bounces(&t) <= 1, "{}", p.display(&t));
        }
        assert!(one.iter().any(|p| p.bounces(&t) == 1));
    }

    #[test]
    fn bounce_budget_is_respected() {
        let t = ClosConfig::small().build();
        let f = FailureSet::none();
        let h1 = t.expect_node("H1");
        let h13 = t.expect_node("H13");
        for k in 0..3 {
            for p in bounce_paths_between(&t, &f, h1, h13, k) {
                assert!(p.bounces(&t) <= k);
            }
        }
    }

    #[test]
    fn cap_truncates_deterministically() {
        let t = ClosConfig::small().build();
        let f = FailureSet::none();
        let h1 = t.expect_node("H1");
        let h9 = t.expect_node("H9");
        let full = bounce_paths_between(&t, &f, h1, h9, 1);
        let capped = bounce_paths_between_capped(&t, &f, h1, h9, 1, 3);
        assert_eq!(capped.len(), 3);
        assert_eq!(&full[..3], &capped[..]);
    }

    #[test]
    fn reroute_after_failure_needs_a_bounce() {
        // Fig 3: with L1-T1 down, traffic arriving at L1 for T1 must bounce.
        let t = ClosConfig::small().build();
        let mut f = FailureSet::none();
        f.fail_between(&t, "L1", "T1");
        let h9 = t.expect_node("H9");
        let h1 = t.expect_node("H1");
        // Up-down paths still exist (via L2), but any path through L1 then
        // to T1 must bounce.
        let one = bounce_paths_between(&t, &f, h9, h1, 1);
        let l1 = t.expect_node("L1");
        let via_l1: Vec<_> = one.iter().filter(|p| p.nodes().contains(&l1)).collect();
        assert!(!via_l1.is_empty());
        for p in via_l1 {
            assert_eq!(p.bounces(&t), 1, "{}", p.display(&t));
        }
    }

    #[test]
    fn same_src_dst_yields_nothing() {
        let t = ClosConfig::small().build();
        let f = FailureSet::none();
        let h1 = t.expect_node("H1");
        assert!(bounce_paths_between(&t, &f, h1, h1, 3).is_empty());
    }

    #[test]
    fn all_pairs_capped_counts() {
        let t = ClosConfig::small().build();
        let f = FailureSet::none();
        let all = all_paths_with_bounces(&t, &f, 0, 2);
        // 16 hosts, 240 ordered pairs, each capped at 2 paths.
        assert!(all.len() <= 240 * 2);
        assert!(!all.is_empty());
    }
}
