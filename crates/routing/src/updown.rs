//! Up-down (valley-free) path enumeration for layered fabrics.

use crate::Path;
use tagger_topo::{FailureSet, NodeId, NodeKind, Topology};

/// Enumerates all loop-free up-down paths between two hosts.
///
/// An up-down path climbs the layer hierarchy zero or more hops, then
/// descends to the destination, never turning up again (paper §3.2). The
/// enumeration is exhaustive over simple paths, so it includes non-minimal
/// up-down paths (e.g. ToR → Leaf → Spine → Leaf → ToR between ToRs that
/// share a leaf); pass the result through a length filter if only shortest
/// paths are wanted.
///
/// Returns paths in deterministic (DFS/port) order.
pub fn updown_paths_between(
    topo: &Topology,
    failures: &FailureSet,
    src: NodeId,
    dst: NodeId,
) -> Vec<Path> {
    crate::bounce::bounce_paths_between(topo, failures, src, dst, 0)
}

/// Enumerates all loop-free up-down paths between every ordered pair of
/// distinct hosts — the default ELP for a Clos fabric ("all up-down
/// paths", paper §4.1).
///
/// Cost grows with fabric size and path diversity; intended for the small
/// and medium fabrics used in tests and experiments.
pub fn updown_paths(topo: &Topology, failures: &FailureSet) -> Vec<Path> {
    let hosts: Vec<NodeId> = topo.host_ids().collect();
    let mut out = Vec::new();
    for &s in &hosts {
        for &d in &hosts {
            if s != d {
                out.extend(updown_paths_between(topo, failures, s, d));
            }
        }
    }
    out
}

/// Enumerates up-down paths between all ordered pairs of *switches* of the
/// given layer-rank floor — useful when the ELP is expressed ToR-to-ToR
/// rather than host-to-host.
pub fn updown_paths_between_switches(topo: &Topology, failures: &FailureSet) -> Vec<Path> {
    let tors: Vec<NodeId> = topo
        .switch_ids()
        .filter(|&s| topo.node(s).kind == NodeKind::Switch)
        .filter(|&s| {
            // ToR = a switch that has at least one host attached.
            topo.neighbors(s)
                .any(|(_, _, n)| topo.node(n).kind == NodeKind::Host)
        })
        .collect();
    let mut out = Vec::new();
    for &s in &tors {
        for &d in &tors {
            if s != d {
                out.extend(crate::bounce::bounce_paths_between(topo, failures, s, d, 0));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use tagger_topo::ClosConfig;

    #[test]
    fn same_pod_paths() {
        let t = ClosConfig::small().build();
        let f = FailureSet::none();
        let h1 = t.expect_node("H1");
        let h5 = t.expect_node("H5"); // under T2, same pod
        let paths = updown_paths_between(&t, &f, h1, h5);
        assert!(!paths.is_empty());
        for p in &paths {
            assert!(p.is_updown(&t), "{}", p.display(&t));
            assert_eq!(p.src(), h1);
            assert_eq!(p.dst(), h5);
        }
        // Shortest same-pod paths go via L1 or L2 (4 hops); spine detours
        // (6 hops) are also valid up-down paths.
        let min = paths.iter().map(|p| p.hops()).min().unwrap();
        assert_eq!(min, 4);
        assert_eq!(paths.iter().filter(|p| p.hops() == 4).count(), 2);
    }

    #[test]
    fn cross_pod_paths_go_via_spine() {
        let t = ClosConfig::small().build();
        let f = FailureSet::none();
        let h1 = t.expect_node("H1");
        let h9 = t.expect_node("H9"); // under T3, other pod
        let paths = updown_paths_between(&t, &f, h1, h9);
        let min = paths.iter().map(|p| p.hops()).min().unwrap();
        assert_eq!(min, 6); // H-T-L-S-L-T-H
                            // 2 leaves x 2 spines x 2 leaves = 8 shortest choices.
        assert_eq!(paths.iter().filter(|p| p.hops() == 6).count(), 8);
        for p in &paths {
            assert!(p.is_updown(&t));
        }
    }

    #[test]
    fn failures_remove_paths() {
        let t = ClosConfig::small().build();
        let mut f = FailureSet::none();
        let h1 = t.expect_node("H1");
        let h9 = t.expect_node("H9");
        let before = updown_paths_between(&t, &f, h1, h9).len();
        f.fail_between(&t, "L1", "S1");
        let after = updown_paths_between(&t, &f, h1, h9).len();
        assert!(after < before);
        for p in updown_paths_between(&t, &f, h1, h9) {
            for (a, b) in p.hop_pairs() {
                assert!(f.link_up(&t, a, b));
            }
        }
    }

    #[test]
    fn all_pairs_enumeration_is_symmetric_in_count() {
        let t = ClosConfig::small().build();
        let f = FailureSet::none();
        let all = updown_paths(&t, &f);
        assert!(!all.is_empty());
        // Directed pair counts match their reverses.
        let h1 = t.expect_node("H1");
        let h9 = t.expect_node("H9");
        let fwd = all
            .iter()
            .filter(|p| p.src() == h1 && p.dst() == h9)
            .count();
        let rev = all
            .iter()
            .filter(|p| p.src() == h9 && p.dst() == h1)
            .count();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn tor_to_tor_enumeration() {
        let t = ClosConfig::small().build();
        let f = FailureSet::none();
        let paths = updown_paths_between_switches(&t, &f);
        assert!(!paths.is_empty());
        for p in &paths {
            assert!(p.is_updown(&t));
            // Endpoints are ToRs (have attached hosts).
            for end in [p.src(), p.dst()] {
                assert!(t
                    .neighbors(end)
                    .any(|(_, _, n)| t.node(n).kind == NodeKind::Host));
            }
        }
    }
}
