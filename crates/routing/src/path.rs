//! Validated, loop-free paths with port resolution.

use std::fmt;
use tagger_topo::{FailureSet, GlobalPort, NodeId, Topology};

/// Why a node sequence failed to validate as a [`Path`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PathError {
    /// Fewer than two nodes.
    TooShort,
    /// Two consecutive nodes are not adjacent (or the link is failed).
    NotAdjacent(NodeId, NodeId),
    /// A node appears twice: ELP paths must be loop-free (paper §6).
    RepeatedNode(NodeId),
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::TooShort => write!(f, "path needs at least two nodes"),
            PathError::NotAdjacent(a, b) => write!(f, "nodes {a} and {b} are not adjacent"),
            PathError::RepeatedNode(n) => write!(f, "node {n} repeats; paths must be loop-free"),
        }
    }
}

impl std::error::Error for PathError {}

/// A loop-free path through the topology, stored as a node sequence.
///
/// Paths are the currency of the ELP: the operator enumerates the paths
/// that must stay lossless, and Tagger compiles them into tagging rules.
/// A `Path` is validated at construction: consecutive nodes must be
/// adjacent and no node may repeat.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Path {
    nodes: Vec<NodeId>,
}

impl Path {
    /// Validates and wraps a node sequence.
    pub fn new(topo: &Topology, nodes: Vec<NodeId>) -> Result<Self, PathError> {
        Self::new_with_failures(topo, &FailureSet::none(), nodes)
    }

    /// Like [`Path::new`] but also rejects hops over failed links.
    pub fn new_with_failures(
        topo: &Topology,
        failures: &FailureSet,
        nodes: Vec<NodeId>,
    ) -> Result<Self, PathError> {
        if nodes.len() < 2 {
            return Err(PathError::TooShort);
        }
        let mut seen = std::collections::BTreeSet::new();
        for &n in &nodes {
            if !seen.insert(n) {
                return Err(PathError::RepeatedNode(n));
            }
        }
        for w in nodes.windows(2) {
            if !failures.link_up(topo, w[0], w[1]) {
                return Err(PathError::NotAdjacent(w[0], w[1]));
            }
        }
        Ok(Path { nodes })
    }

    /// Builds a path from node names; panics on invalid input. For tests
    /// and experiment scripts.
    pub fn from_names(topo: &Topology, names: &[&str]) -> Self {
        let nodes = names.iter().map(|n| topo.expect_node(n)).collect();
        Path::new(topo, nodes).expect("invalid path")
    }

    /// The node sequence.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// First node.
    pub fn src(&self) -> NodeId {
        self.nodes[0]
    }

    /// Last node.
    pub fn dst(&self) -> NodeId {
        *self.nodes.last().expect("a path has at least one node")
    }

    /// Number of hops (links traversed) = nodes − 1.
    pub fn hops(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Iterates over `(from, to)` node pairs, one per hop.
    pub fn hop_pairs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes.windows(2).map(|w| (w[0], w[1]))
    }

    /// For each hop, the ingress port at the *receiving* node — the
    /// `(switch, ingress-port)` pairs Tagger's tagged-graph nodes are
    /// built from.
    ///
    /// # Panics
    /// Panics if the path does not fit the topology (cannot happen for a
    /// validated path on the same topology).
    pub fn ingress_ports<'a>(
        &'a self,
        topo: &'a Topology,
    ) -> impl Iterator<Item = GlobalPort> + 'a {
        self.hop_pairs().map(move |(a, b)| {
            let link = topo
                .link_between(a, b)
                .unwrap_or_else(|| panic!("path hop {a}->{b} not in topology"));
            topo.link(link).endpoint_on(b)
        })
    }

    /// For each hop, the egress port at the *sending* node.
    pub fn egress_ports<'a>(&'a self, topo: &'a Topology) -> impl Iterator<Item = GlobalPort> + 'a {
        self.hop_pairs().map(move |(a, b)| {
            let link = topo
                .link_between(a, b)
                .unwrap_or_else(|| panic!("path hop {a}->{b} not in topology"));
            topo.link(link).endpoint_on(a)
        })
    }

    /// Counts *bounces*: transitions where the path was going down the
    /// layer hierarchy and turns up again (paper §4.2). An up-down path
    /// has zero bounces; each additional down→up turn is one bounce.
    ///
    /// Host-adjacent hops count like any other (Host has rank 0, so
    /// leaving the source host is an up-hop and reaching the destination
    /// is a down-hop).
    pub fn bounces(&self, topo: &Topology) -> usize {
        let mut bounces = 0;
        let mut going_down = false;
        for (a, b) in self.hop_pairs() {
            if topo.is_down_hop(a, b) {
                going_down = true;
            } else if topo.is_up_hop(a, b) && going_down {
                bounces += 1;
                going_down = false;
            }
        }
        bounces
    }

    /// True if the path never violates the up-down rule (zero bounces).
    pub fn is_updown(&self, topo: &Topology) -> bool {
        self.bounces(topo) == 0
    }

    /// Renders the path as `A -> B -> C` using node names.
    pub fn display<'a>(&'a self, topo: &'a Topology) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Path, &'a Topology);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                for (i, &n) in self.0.nodes.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{}", self.1.node(n).name)?;
                }
                Ok(())
            }
        }
        D(self, topo)
    }
}

impl fmt::Debug for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Path{:?}", self.nodes)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use tagger_topo::ClosConfig;

    fn topo() -> Topology {
        ClosConfig::small().build()
    }

    #[test]
    fn valid_updown_path() {
        let t = topo();
        let p = Path::from_names(&t, &["H1", "T1", "L1", "S1", "L3", "T3", "H9"]);
        assert_eq!(p.hops(), 6);
        assert!(p.is_updown(&t));
        assert_eq!(p.bounces(&t), 0);
    }

    #[test]
    fn one_bounce_path_counts_one() {
        let t = topo();
        // Fig 3 green flow: T3 up to spine, down to L1, bounce up to S2,
        // down to L2 and T1.
        let p = Path::from_names(&t, &["H9", "T3", "L3", "S1", "L1", "S2", "L2", "T1", "H1"]);
        assert_eq!(p.bounces(&t), 1);
        assert!(!p.is_updown(&t));
    }

    #[test]
    fn two_bounce_path_counts_two() {
        let t = topo();
        // Bounce once at T2 (pod 1) and once at T3 (pod 2).
        let p = Path::from_names(
            &t,
            &[
                "H1", "T1", "L1", "T2", "L2", "S1", "L3", "T3", "L4", "T4", "H13",
            ],
        );
        assert_eq!(p.bounces(&t), 2);
    }

    #[test]
    fn rejects_non_adjacent() {
        let t = topo();
        let h1 = t.expect_node("H1");
        let s1 = t.expect_node("S1");
        assert_eq!(
            Path::new(&t, vec![h1, s1]),
            Err(PathError::NotAdjacent(h1, s1))
        );
    }

    #[test]
    fn rejects_loops() {
        let t = topo();
        let t1 = t.expect_node("T1");
        let l1 = t.expect_node("L1");
        let err = Path::new(&t, vec![t1, l1, t1]);
        assert_eq!(err, Err(PathError::RepeatedNode(t1)));
    }

    #[test]
    fn rejects_too_short() {
        let t = topo();
        let t1 = t.expect_node("T1");
        assert_eq!(Path::new(&t, vec![t1]), Err(PathError::TooShort));
    }

    #[test]
    fn rejects_failed_links() {
        let t = topo();
        let mut f = FailureSet::none();
        f.fail_between(&t, "T1", "L1");
        let t1 = t.expect_node("T1");
        let l1 = t.expect_node("L1");
        assert!(Path::new_with_failures(&t, &f, vec![t1, l1]).is_err());
        assert!(Path::new(&t, vec![t1, l1]).is_ok());
    }

    #[test]
    fn ingress_egress_ports_are_consistent() {
        let t = topo();
        let p = Path::from_names(&t, &["H1", "T1", "L1"]);
        let ins: Vec<_> = p.ingress_ports(&t).collect();
        let egs: Vec<_> = p.egress_ports(&t).collect();
        assert_eq!(ins.len(), 2);
        assert_eq!(ins[0].node, t.expect_node("T1"));
        assert_eq!(ins[1].node, t.expect_node("L1"));
        assert_eq!(egs[0].node, t.expect_node("H1"));
        assert_eq!(egs[1].node, t.expect_node("T1"));
        // Each hop's egress and ingress are two ends of the same link.
        for (e, i) in egs.iter().zip(&ins) {
            assert_eq!(t.peer_of(*e).unwrap(), *i);
        }
    }

    #[test]
    fn display_uses_names() {
        let t = topo();
        let p = Path::from_names(&t, &["H1", "T1", "L1"]);
        assert_eq!(format!("{}", p.display(&t)), "H1 -> T1 -> L1");
    }
}
