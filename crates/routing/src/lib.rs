//! # tagger-routing — routing substrate for Tagger
//!
//! Everything Tagger needs to know about *where packets may travel*:
//!
//! - [`Path`] — a validated, loop-free node sequence with port resolution,
//!   up/down classification and bounce counting.
//! - [`updown_paths`] / [`updown_paths_between`] — valley-free (up-down)
//!   path enumeration over layered fabrics (Clos, FatTree).
//! - [`bounce_paths_between`] / [`all_paths_with_bounces`] — the k-bounce
//!   expansion of an up-down ELP (paper §4.3): paths that violate the
//!   up-down rule at most `k` times, the result of failures and reroutes.
//! - [`shortest_paths_between`] / [`ShortestPaths`] — BFS shortest-path
//!   enumeration for unstructured (Jellyfish) fabrics.
//! - [`bcube_paths`] — BCube's default single-path routing.
//! - [`Fib`] — per-switch destination-based forwarding tables with ECMP
//!   and override entries (used to inject the routing loop of the paper's
//!   Figure 11 and the reroutes of Figure 3).
//!
//! The split from `tagger-core` is deliberate: routing produces candidate
//! lossless paths; Tagger consumes them as an opaque ELP set. Nothing in
//! the tagging algorithms depends on *how* the paths were computed.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

mod bcube;
mod bounce;
mod fib;
mod path;
mod shortest;
mod updown;

pub use bcube::bcube_paths;
pub use bcube::{bcube_route, bcube_route_rotated};
pub use bounce::bounce_paths_between_capped;
pub use bounce::{all_paths_with_bounces, bounce_paths_between};
pub use fib::{EcmpMode, Fib};
pub use path::{Path, PathError};
pub use shortest::enumerate_from_dag;
pub use shortest::{
    shortest_path_dag, shortest_paths_all_pairs, shortest_paths_between, ShortestPaths,
};
pub use updown::{updown_paths, updown_paths_between, updown_paths_between_switches};
