//! BCube default single-path routing (digit correction).
//!
//! BCube is server-centric: intermediate *servers* forward packets between
//! levels. `BCubeRouting` corrects the destination address one digit at a
//! time, highest level first, traversing one switch per corrected digit.
//! The paper (§5.3) reports that Algorithm 2 needs only `k` tags for a
//! k-level BCube under this routing; [`bcube_paths`] generates the ELP for
//! that experiment.

use crate::Path;
use tagger_topo::{BCubeConfig, NodeId, Topology};

/// Computes the default BCube route between two servers, as a node path
/// `H_src → B… → H… → B… → H_dst`, correcting address digits from the
/// highest differing level down to the lowest.
///
/// Returns `None` if `src == dst`.
///
/// # Panics
/// Panics if the topology was not built by [`tagger_topo::bcube`] with the
/// same `cfg` (node names must match).
pub fn bcube_route(cfg: &BCubeConfig, topo: &Topology, src: usize, dst: usize) -> Option<Path> {
    if src == dst {
        return None;
    }
    let per_level_digits = cfg.k; // switch index has k digits
    let mut nodes: Vec<NodeId> = vec![topo.expect_node(&format!("H{src}"))];
    let mut cur = cfg.digits(src);
    let dst_digits = cfg.digits(dst);
    for level in (0..=cfg.k).rev() {
        if cur[level] == dst_digits[level] {
            continue;
        }
        // The level-`level` switch shared by `cur` and the corrected
        // address: index = cur with digit `level` removed.
        let mut sw_digits = Vec::with_capacity(per_level_digits);
        sw_digits.extend_from_slice(&cur[..level]);
        sw_digits.extend_from_slice(&cur[level + 1..]);
        let sw_index = sw_digits
            .iter()
            .rev()
            .fold(0usize, |acc, &d| acc * cfg.n + d);
        nodes.push(topo.expect_node(&format!("B{level}_{sw_index}")));
        cur[level] = dst_digits[level];
        let server = cfg.from_digits(&cur);
        nodes.push(topo.expect_node(&format!("H{server}")));
    }
    Some(Path::new(topo, nodes).expect("digit-correction path is simple and adjacent"))
}

/// Computes the BCube route that corrects digits in the rotated order
/// `start, start-1, …, 0, k, k-1, …, start+1` — the permutation BCube's
/// `BuildPathSet` uses to derive its `k + 1` parallel paths. `start = k`
/// gives the same route as [`bcube_route`].
pub fn bcube_route_rotated(
    cfg: &BCubeConfig,
    topo: &Topology,
    src: usize,
    dst: usize,
    start: usize,
) -> Option<Path> {
    if src == dst {
        return None;
    }
    assert!(start <= cfg.k, "start level out of range");
    let mut nodes: Vec<NodeId> = vec![topo.expect_node(&format!("H{src}"))];
    let mut cur = cfg.digits(src);
    let dst_digits = cfg.digits(dst);
    let order = (0..=cfg.k).map(|i| (start + cfg.k + 1 - i) % (cfg.k + 1));
    for level in order {
        if cur[level] == dst_digits[level] {
            continue;
        }
        let mut sw_digits = Vec::with_capacity(cfg.k);
        sw_digits.extend_from_slice(&cur[..level]);
        sw_digits.extend_from_slice(&cur[level + 1..]);
        let sw_index = sw_digits
            .iter()
            .rev()
            .fold(0usize, |acc, &d| acc * cfg.n + d);
        nodes.push(topo.expect_node(&format!("B{level}_{sw_index}")));
        cur[level] = dst_digits[level];
        let server = cfg.from_digits(&cur);
        nodes.push(topo.expect_node(&format!("H{server}")));
    }
    Some(Path::new(topo, nodes).expect("digit-correction path is simple and adjacent"))
}

/// Generates the default-routing ELP for a BCube fabric.
///
/// With `multipath = false`: one digit-correction route per ordered
/// server pair (highest level first). With `multipath = true`: all
/// `k + 1` rotated correction orders per pair, as BCube's `BuildPathSet`
/// produces — the mixed orders are what force multiple lossless
/// priorities (paper §5.3).
pub fn bcube_paths(cfg: &BCubeConfig, topo: &Topology, multipath: bool) -> Vec<Path> {
    let n = cfg.num_servers();
    let mut out = Vec::with_capacity(n * (n - 1));
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            if multipath {
                let mut seen = std::collections::BTreeSet::new();
                for start in 0..=cfg.k {
                    if let Some(p) = bcube_route_rotated(cfg, topo, s, d, start) {
                        if seen.insert(p.clone()) {
                            out.push(p);
                        }
                    }
                }
            } else if let Some(p) = bcube_route(cfg, topo, s, d) {
                out.push(p);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use tagger_topo::bcube;

    #[test]
    fn one_digit_difference_is_two_hops() {
        let cfg = BCubeConfig { n: 4, k: 1 };
        let t = bcube(4, 1);
        // Servers 0 and 3 differ only in digit 0: H0 -> B0_0 -> H3.
        let p = bcube_route(&cfg, &t, 0, 3).unwrap();
        assert_eq!(p.hops(), 2);
        let names: Vec<&str> = p.nodes().iter().map(|&n| t.node(n).name.as_str()).collect();
        assert_eq!(names, ["H0", "B0_0", "H3"]);
    }

    #[test]
    fn two_digit_difference_corrects_high_level_first() {
        let cfg = BCubeConfig { n: 4, k: 1 };
        let t = bcube(4, 1);
        // 0 = (0,0); 5 = (1,1): correct digit 1 first (via B1_0 to H4),
        // then digit 0 (via B0_1 to H5).
        let p = bcube_route(&cfg, &t, 0, 5).unwrap();
        let names: Vec<&str> = p.nodes().iter().map(|&n| t.node(n).name.as_str()).collect();
        assert_eq!(names, ["H0", "B1_0", "H4", "B0_1", "H5"]);
    }

    #[test]
    fn route_lengths_bounded_by_digit_distance() {
        let cfg = BCubeConfig { n: 3, k: 2 };
        let t = bcube(3, 2);
        for s in 0..cfg.num_servers() {
            for d in 0..cfg.num_servers() {
                if s == d {
                    continue;
                }
                let p = bcube_route(&cfg, &t, s, d).unwrap();
                let differing = cfg
                    .digits(s)
                    .iter()
                    .zip(cfg.digits(d))
                    .filter(|(a, b)| **a != *b)
                    .count();
                assert_eq!(p.hops(), 2 * differing);
            }
        }
    }

    #[test]
    fn elp_covers_all_ordered_pairs() {
        let cfg = BCubeConfig { n: 2, k: 1 };
        let t = bcube(2, 1);
        let elp = bcube_paths(&cfg, &t, false);
        assert_eq!(elp.len(), 4 * 3);
    }

    #[test]
    fn rotated_order_start0_corrects_low_digit_first() {
        let cfg = BCubeConfig { n: 4, k: 1 };
        let t = bcube(4, 1);
        // 0 = (0,0) -> 5 = (1,1) with start level 0: correct digit 0
        // first (via B0_0 to H1), then digit 1 (via B1_1 to H5).
        let p = bcube_route_rotated(&cfg, &t, 0, 5, 0).unwrap();
        let names: Vec<&str> = p.nodes().iter().map(|&n| t.node(n).name.as_str()).collect();
        assert_eq!(names, ["H0", "B0_0", "H1", "B1_1", "H5"]);
        // start = k reproduces the default route.
        let d = bcube_route(&cfg, &t, 0, 5).unwrap();
        let r = bcube_route_rotated(&cfg, &t, 0, 5, 1).unwrap();
        assert_eq!(d, r);
    }

    #[test]
    fn multipath_elp_has_rotations() {
        let cfg = BCubeConfig { n: 2, k: 1 };
        let t = bcube(2, 1);
        let single = bcube_paths(&cfg, &t, false);
        let multi = bcube_paths(&cfg, &t, true);
        assert!(multi.len() > single.len());
        for p in &single {
            assert!(multi.contains(p));
        }
    }
}
