//! Property tests for the routing substrate.

use proptest::prelude::*;
use tagger_routing::{
    bounce_paths_between, bounce_paths_between_capped, shortest_paths_between, EcmpMode, Fib,
};
use tagger_topo::{ClosConfig, FailureSet};

fn small() -> tagger_topo::Topology {
    ClosConfig::small().build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Bounce enumeration is monotone in k and each path respects its
    /// budget.
    #[test]
    fn bounce_sets_are_monotone(pair in 0usize..240, k in 0usize..3) {
        let topo = small();
        let hosts: Vec<_> = topo.host_ids().collect();
        let a = hosts[pair % hosts.len()];
        let b = hosts[(pair / hosts.len() + 1 + pair) % hosts.len()];
        prop_assume!(a != b);
        let f = FailureSet::none();
        let lo = bounce_paths_between(&topo, &f, a, b, k);
        let hi = bounce_paths_between(&topo, &f, a, b, k + 1);
        prop_assert!(hi.len() >= lo.len());
        for p in &lo {
            prop_assert!(hi.contains(p));
            prop_assert!(p.bounces(&topo) <= k);
        }
    }

    /// Shortest paths are truly minimal: no enumerated bounce path
    /// between the same endpoints is shorter.
    #[test]
    fn shortest_is_minimal(pair in 0usize..240) {
        let topo = small();
        let hosts: Vec<_> = topo.host_ids().collect();
        let a = hosts[pair % hosts.len()];
        let b = hosts[(pair * 7 + 3) % hosts.len()];
        prop_assume!(a != b);
        let f = FailureSet::none();
        let sp = shortest_paths_between(&topo, &f, a, b, usize::MAX);
        prop_assume!(!sp.is_empty());
        let min = sp[0].hops();
        for p in bounce_paths_between_capped(&topo, &f, a, b, 2, 50) {
            prop_assert!(p.hops() >= min);
        }
    }

    /// The FIB delivers every host pair on the healthy fabric, under
    /// both ECMP modes, and the realized route is a valid loop-free path.
    #[test]
    fn fib_delivers_all_pairs(hash in 0u64..64) {
        let topo = small();
        let fib = Fib::shortest_path(&topo, &FailureSet::none());
        let hosts: Vec<_> = topo.host_ids().collect();
        let a = hosts[(hash as usize) % hosts.len()];
        let b = hosts[(hash as usize * 5 + 2) % hosts.len()];
        prop_assume!(a != b);
        for mode in [EcmpMode::First, EcmpMode::FlowHash] {
            // trace uses First; emulate FlowHash by walking manually.
            let mut here = topo.attached_switch(a).unwrap();
            let mut visited = vec![a, here];
            let mut ok = false;
            for _ in 0..12 {
                let Some(port) = fib.select(here, b, hash, mode) else { break };
                let peer = topo
                    .peer_of(tagger_topo::GlobalPort::new(here, port))
                    .unwrap();
                prop_assert!(!visited.contains(&peer.node), "loop via {:?}", peer.node);
                visited.push(peer.node);
                if peer.node == b {
                    ok = true;
                    break;
                }
                here = peer.node;
            }
            prop_assert!(ok, "undelivered {a} -> {b} mode {mode:?}");
        }
    }

    /// ECMP hashing always returns one of the installed next-hop ports.
    #[test]
    fn select_returns_installed_ports(hash in any::<u64>()) {
        let topo = small();
        let fib = Fib::shortest_path(&topo, &FailureSet::none());
        let t1 = topo.expect_node("T1");
        let h9 = topo.expect_node("H9");
        let ports = fib.next_ports(t1, h9);
        let chosen = fib.select(t1, h9, hash, EcmpMode::FlowHash).unwrap();
        prop_assert!(ports.contains(&chosen));
    }
}
