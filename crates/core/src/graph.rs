//! The tagged graph `G(V, E)` and the deadlock-freedom verifier.
//!
//! Paper §5 formalizes a tagging scheme as a graph whose nodes are
//! `(ingress port, tag)` pairs — "port `A_i` may receive lossless packets
//! carrying tag `x`" — and whose edges are the possible tag transitions as
//! a packet crosses a switch. Theorem 5.1: if every per-tag subgraph `G_k`
//! is acyclic and no edge decreases the tag, the scheme is deadlock-free.
//! [`TaggedGraph::verify`] checks exactly those two requirements.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use tagger_topo::{GlobalPort, NodeId, NodeKind, Topology};

/// A tag: the small integer carried in packets (DSCP in the hardware
/// implementation, §7) that selects the lossless priority queue.
///
/// Lossless tags are `1..=T`; the value `0` is never used. Packets whose
/// tag exceeds the configured maximum (or that match no rule) are demoted
/// to the lossy class — that demotion is represented by
/// [`crate::TagDecision::Lossy`], not by a `Tag` value.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tag(pub u16);

impl Tag {
    /// The initial tag carried by freshly injected packets (paper §4.3:
    /// "packets start with tag of 1").
    pub const INITIAL: Tag = Tag(1);

    /// The next tag (monotone bump).
    pub fn next(self) -> Tag {
        Tag(self.0 + 1)
    }
}

impl fmt::Debug for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag{}", self.0)
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A node of the tagged graph: ingress port `A_i` paired with a tag it may
/// receive lossless packets with.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaggedNode {
    /// The ingress port.
    pub port: GlobalPort,
    /// The tag carried by packets arriving at that port.
    pub tag: Tag,
}

impl fmt::Debug for TaggedNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?},{})", self.port, self.tag)
    }
}

/// A directed edge `(A_i, x) → (B_j, y)`: switch `A` may forward a packet
/// that arrived on port `i` with tag `x` to switch `B`'s port `j`,
/// rewriting the tag to `y`.
pub type TaggedEdge = (TaggedNode, TaggedNode);

/// Why a tagged graph failed verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// Requirement 1 violated: the subgraph of one tag contains a cycle —
    /// a cyclic buffer dependency within a single lossless priority.
    /// Carries one witness cycle (first node repeated at the end).
    CyclicTag(Tag, Vec<TaggedNode>),
    /// Requirement 2 violated: an edge decreases the tag, breaking the
    /// monotone order between priorities.
    TagDecrease(TaggedNode, TaggedNode),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::CyclicTag(tag, cycle) => {
                write!(f, "cyclic buffer dependency within tag {tag}: ")?;
                for (i, n) in cycle.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{n:?}")?;
                }
                Ok(())
            }
            VerifyError::TagDecrease(a, b) => write!(f, "tag decreases along edge {a:?} -> {b:?}"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// The tagged graph `G(V, E)` of paper §5.
///
/// Maintains nodes and edges in deterministic (sorted) order. Construction
/// is incremental ([`TaggedGraph::add_node`], [`TaggedGraph::add_edge`]);
/// the generation algorithms in this crate produce well-formed graphs, and
/// [`TaggedGraph::verify`] certifies deadlock freedom per Theorem 5.1.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TaggedGraph {
    nodes: BTreeSet<TaggedNode>,
    edges: BTreeSet<TaggedEdge>,
}

impl TaggedGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a node. Idempotent.
    pub fn add_node(&mut self, node: TaggedNode) {
        self.nodes.insert(node);
    }

    /// Inserts an edge, adding both endpoints as nodes. Idempotent.
    pub fn add_edge(&mut self, from: TaggedNode, to: TaggedNode) {
        self.nodes.insert(from);
        self.nodes.insert(to);
        self.edges.insert((from, to));
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over nodes in sorted order.
    pub fn nodes(&self) -> impl Iterator<Item = &TaggedNode> + '_ {
        self.nodes.iter()
    }

    /// Iterates over edges in sorted order.
    pub fn edges(&self) -> impl Iterator<Item = &TaggedEdge> + '_ {
        self.edges.iter()
    }

    /// True if the node is present.
    pub fn contains_node(&self, n: &TaggedNode) -> bool {
        self.nodes.contains(n)
    }

    /// True if the edge is present.
    pub fn contains_edge(&self, e: &TaggedEdge) -> bool {
        self.edges.contains(e)
    }

    /// The set of distinct tags appearing on nodes, sorted.
    pub fn tags(&self) -> Vec<Tag> {
        let set: BTreeSet<Tag> = self.nodes.iter().map(|n| n.tag).collect();
        set.into_iter().collect()
    }

    /// The largest tag in the graph (`T` in the paper), or `None` if empty.
    pub fn max_tag(&self) -> Option<Tag> {
        self.nodes.iter().map(|n| n.tag).max()
    }

    /// The number of *lossless priorities* the scheme needs: distinct tags
    /// over nodes that buffer-and-forward. Switch ingress nodes always
    /// count; host ingress nodes count only when they forward onward
    /// (server-centric fabrics like BCube — there the server NIC's
    /// ingress queue is part of the buffer-dependency graph). Pure-sink
    /// host nodes are excluded: the paper's Figure 5 notes the final tag
    /// "will only appear on destination servers", where no lossless
    /// queue is consumed.
    pub fn num_lossless_tags(&self, topo: &Topology) -> usize {
        let forwarding_hosts: BTreeSet<TaggedNode> = self
            .edges
            .iter()
            .map(|&(a, _)| a)
            .filter(|n| topo.node(n.port.node).kind == NodeKind::Host)
            .collect();
        let set: BTreeSet<Tag> = self
            .nodes
            .iter()
            .filter(|n| {
                topo.node(n.port.node).kind == NodeKind::Switch || forwarding_hosts.contains(n)
            })
            .map(|n| n.tag)
            .collect();
        set.len()
    }

    /// Checks the two requirements of Theorem 5.1 and returns `Ok(())` if
    /// the tagging scheme is deadlock-free:
    ///
    /// 1. every per-tag subgraph `G_k` is acyclic, and
    /// 2. no edge goes from a larger tag to a smaller one.
    pub fn verify(&self) -> Result<(), VerifyError> {
        for &(a, b) in &self.edges {
            if b.tag < a.tag {
                return Err(VerifyError::TagDecrease(a, b));
            }
        }
        for tag in self.tags() {
            if let Some(cycle) = self.find_cycle_in_tag(tag) {
                return Err(VerifyError::CyclicTag(tag, cycle));
            }
        }
        Ok(())
    }

    /// Searches for a cycle within the subgraph of one tag. Returns a
    /// witness cycle (first node repeated last) or `None` if acyclic.
    pub fn find_cycle_in_tag(&self, tag: Tag) -> Option<Vec<TaggedNode>> {
        // Index the same-tag subgraph.
        let nodes: Vec<TaggedNode> = self
            .nodes
            .iter()
            .copied()
            .filter(|n| n.tag == tag)
            .collect();
        let index: BTreeMap<TaggedNode, usize> =
            nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for &(a, b) in &self.edges {
            if a.tag == tag && b.tag == tag {
                out[index[&a]].push(index[&b]);
            }
        }
        // Iterative coloring DFS with parent tracking for the witness.
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let mut color = vec![WHITE; nodes.len()];
        let mut parent = vec![usize::MAX; nodes.len()];
        for start in 0..nodes.len() {
            if color[start] != WHITE {
                continue;
            }
            // stack of (node, next child index)
            let mut stack = vec![(start, 0usize)];
            color[start] = GRAY;
            while let Some(&(u, ci)) = stack.last() {
                if ci < out[u].len() {
                    stack.last_mut().expect("nonempty").1 += 1;
                    let v = out[u][ci];
                    match color[v] {
                        WHITE => {
                            color[v] = GRAY;
                            parent[v] = u;
                            stack.push((v, 0));
                        }
                        GRAY => {
                            // Found a back edge u -> v: reconstruct cycle.
                            let mut cycle = vec![nodes[v]];
                            let mut w = u;
                            let mut rev = Vec::new();
                            while w != v {
                                rev.push(nodes[w]);
                                w = parent[w];
                            }
                            cycle.extend(rev.into_iter().rev());
                            cycle.push(nodes[v]);
                            return Some(cycle);
                        }
                        _ => {}
                    }
                } else {
                    color[u] = BLACK;
                    stack.pop();
                }
            }
        }
        None
    }

    /// Merges another graph into this one (set union of nodes and edges).
    pub fn union_with(&mut self, other: &TaggedGraph) {
        self.nodes.extend(other.nodes.iter().copied());
        self.edges.extend(other.edges.iter().copied());
    }

    /// Returns a copy with every tag shifted by `offset` — the primitive
    /// behind multi-class tag sharing (§6).
    pub fn shifted(&self, offset: u16) -> TaggedGraph {
        let shift = |n: TaggedNode| TaggedNode {
            port: n.port,
            tag: Tag(n.tag.0 + offset),
        };
        TaggedGraph {
            nodes: self.nodes.iter().copied().map(shift).collect(),
            edges: self
                .edges
                .iter()
                .map(|&(a, b)| (shift(a), shift(b)))
                .collect(),
        }
    }

    /// Renders the graph as `(node) -> (node)` lines for debugging.
    pub fn dump(&self, topo: &Topology) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let pretty = |n: &TaggedNode| {
            format!(
                "({}:{},{})",
                topo.node(n.port.node).name,
                n.port.port,
                n.tag
            )
        };
        for n in &self.nodes {
            let _ = writeln!(s, "node {}", pretty(n));
        }
        for (a, b) in &self.edges {
            let _ = writeln!(s, "edge {} -> {}", pretty(a), pretty(b));
        }
        s
    }

    /// Convenience: node on `node`'s ingress from neighbor `from`, with
    /// `tag` — panics if not adjacent. For tests and examples.
    pub fn node_for(topo: &Topology, node: NodeId, from: NodeId, tag: Tag) -> TaggedNode {
        let port = topo
            .port_towards(node, from)
            .unwrap_or_else(|| panic!("{node} and {from} not adjacent"));
        TaggedNode {
            port: GlobalPort::new(node, port),
            tag,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tagger_topo::{Layer, PortId};

    fn gp(node: u32, port: u16) -> GlobalPort {
        GlobalPort::new(NodeId(node), PortId(port))
    }

    fn tn(node: u32, port: u16, tag: u16) -> TaggedNode {
        TaggedNode {
            port: gp(node, port),
            tag: Tag(tag),
        }
    }

    #[test]
    fn empty_graph_verifies() {
        assert_eq!(TaggedGraph::new().verify(), Ok(()));
    }

    #[test]
    fn acyclic_monotone_graph_verifies() {
        let mut g = TaggedGraph::new();
        g.add_edge(tn(0, 0, 1), tn(1, 0, 1));
        g.add_edge(tn(1, 0, 1), tn(2, 0, 2));
        g.add_edge(tn(2, 0, 2), tn(3, 0, 2));
        assert_eq!(g.verify(), Ok(()));
        assert_eq!(g.tags(), vec![Tag(1), Tag(2)]);
        assert_eq!(g.max_tag(), Some(Tag(2)));
    }

    #[test]
    fn cycle_within_tag_is_caught() {
        // The CBD of the paper's Figure 1: three switches in a ring, all
        // one tag.
        let mut g = TaggedGraph::new();
        g.add_edge(tn(0, 0, 1), tn(1, 0, 1));
        g.add_edge(tn(1, 0, 1), tn(2, 0, 1));
        g.add_edge(tn(2, 0, 1), tn(0, 0, 1));
        match g.verify() {
            Err(VerifyError::CyclicTag(tag, cycle)) => {
                assert_eq!(tag, Tag(1));
                assert_eq!(cycle.first(), cycle.last());
                assert_eq!(cycle.len(), 4); // 3 nodes + repeat
            }
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn tag_decrease_is_caught() {
        let mut g = TaggedGraph::new();
        g.add_edge(tn(0, 0, 2), tn(1, 0, 1));
        assert!(matches!(g.verify(), Err(VerifyError::TagDecrease(_, _))));
    }

    #[test]
    fn cycle_across_tags_is_fine_if_monotone_impossible() {
        // A "cycle" through increasing tags cannot exist: any closed walk
        // must come back down, which trips TagDecrease. Simulate: edges
        // 1->2, 2->1 on the same ports.
        let mut g = TaggedGraph::new();
        g.add_edge(tn(0, 0, 1), tn(1, 0, 2));
        g.add_edge(tn(1, 0, 2), tn(0, 0, 1));
        assert!(matches!(g.verify(), Err(VerifyError::TagDecrease(_, _))));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = TaggedGraph::new();
        g.add_edge(tn(0, 0, 1), tn(0, 0, 1));
        assert!(matches!(g.verify(), Err(VerifyError::CyclicTag(_, _))));
    }

    #[test]
    fn witness_cycle_is_a_real_cycle() {
        let mut g = TaggedGraph::new();
        // Two separate components; cycle in the second.
        g.add_edge(tn(0, 0, 1), tn(1, 0, 1));
        g.add_edge(tn(5, 0, 1), tn(6, 0, 1));
        g.add_edge(tn(6, 0, 1), tn(7, 0, 1));
        g.add_edge(tn(7, 0, 1), tn(5, 0, 1));
        let cycle = g.find_cycle_in_tag(Tag(1)).expect("cycle exists");
        // Every consecutive pair is an edge.
        for w in cycle.windows(2) {
            assert!(g.contains_edge(&(w[0], w[1])), "{w:?} not an edge");
        }
    }

    #[test]
    fn shifted_preserves_structure() {
        let mut g = TaggedGraph::new();
        g.add_edge(tn(0, 0, 1), tn(1, 0, 2));
        let s = g.shifted(3);
        assert_eq!(s.tags(), vec![Tag(4), Tag(5)]);
        assert_eq!(s.num_edges(), 1);
        assert_eq!(s.verify(), Ok(()));
    }

    #[test]
    fn union_is_set_union() {
        let mut a = TaggedGraph::new();
        a.add_edge(tn(0, 0, 1), tn(1, 0, 1));
        let mut b = TaggedGraph::new();
        b.add_edge(tn(0, 0, 1), tn(1, 0, 1));
        b.add_edge(tn(1, 0, 1), tn(2, 0, 2));
        a.union_with(&b);
        assert_eq!(a.num_edges(), 2);
        assert_eq!(a.num_nodes(), 3);
    }

    #[test]
    fn lossless_tag_count_excludes_hosts() {
        let mut topo = Topology::new();
        let h = topo.add_host("H1");
        let s1 = topo.add_switch("S1", Layer::Tor);
        let s2 = topo.add_switch("S2", Layer::Leaf);
        topo.connect(h, s1);
        topo.connect(s1, s2);
        topo.connect(s2, h); // host also reachable from s2 for the test
        let mut g = TaggedGraph::new();
        // tag 1 at s1 ingress, tag 2 at s2 ingress, tag 3 at host ingress.
        let n1 = TaggedGraph::node_for(&topo, s1, h, Tag(1));
        let n2 = TaggedGraph::node_for(&topo, s2, s1, Tag(2));
        let n3 = TaggedGraph::node_for(&topo, h, s2, Tag(3));
        g.add_edge(n1, n2);
        g.add_edge(n2, n3);
        assert_eq!(g.max_tag(), Some(Tag(3)));
        assert_eq!(g.num_lossless_tags(&topo), 2);
    }
}
