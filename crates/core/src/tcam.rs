//! TCAM compilation with bit-mask compression (paper §7, Fig. 9).
//!
//! Commodity ASICs match ports as *bitmaps*: a TCAM entry with pattern 0
//! and mask `!S` matches exactly the one-hot port encodings in set `S`, so
//! one entry can match many ports. Tagger exploits this twice:
//!
//! - **InPort aggregation**: rules identical except for the ingress port
//!   merge into one entry — `n(n−1)·m(m−1)/2` exact-match rules per
//!   switch become `n·m(m−1)/2` entries.
//! - **Joint aggregation**: egress ports whose ingress-port sets coincide
//!   merge too, often collapsing a switch's whole table to a handful of
//!   entries.
//!
//! Compiled programs are *semantically equivalent* to the source
//! [`RuleSet`]: entries produced here are pairwise disjoint, so match
//! order is irrelevant, and anything unmatched falls to the lossy
//! safeguard exactly as in the exact-match table.

use crate::{RuleSet, SwitchRule, Tag, TagDecision};
use std::collections::BTreeMap;
use tagger_topo::{NodeId, PortId, Topology};

/// A set of ports matched by one TCAM pattern/mask pair.
///
/// Realized in hardware as pattern `0…0`, mask `!bits` over the one-hot
/// port bitmap; in this model simply a bitset. Supports switches with up
/// to 128 ports, beyond any current ASIC radix.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct PortSet {
    bits: u128,
}

impl PortSet {
    /// The empty set.
    pub fn empty() -> Self {
        PortSet { bits: 0 }
    }

    /// A singleton set.
    pub fn single(port: PortId) -> Self {
        let mut s = PortSet::empty();
        s.insert(port);
        s
    }

    /// Inserts a port.
    ///
    /// # Panics
    /// Panics for port numbers ≥ 128 (no such ASIC exists).
    pub fn insert(&mut self, port: PortId) {
        assert!(port.0 < 128, "port {port} out of TCAM bitmap range");
        self.bits |= 1 << port.0;
    }

    /// Membership test — the TCAM match `(onehot(port) & mask) == 0`.
    pub fn contains(&self, port: PortId) -> bool {
        port.0 < 128 && self.bits & (1 << port.0) != 0
    }

    /// Number of ports in the set.
    pub fn len(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Iterates over member ports in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = PortId> + '_ {
        (0..128u16)
            .filter(|&p| self.contains(PortId(p)))
            .map(PortId)
    }

    /// True if every port of `other` is also in `self`.
    pub fn is_superset(&self, other: &PortSet) -> bool {
        other.bits & !self.bits == 0
    }

    /// True if the two sets share at least one port.
    pub fn intersects(&self, other: &PortSet) -> bool {
        self.bits & other.bits != 0
    }
}

impl FromIterator<PortId> for PortSet {
    fn from_iter<I: IntoIterator<Item = PortId>>(iter: I) -> Self {
        let mut s = PortSet::empty();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

/// One compiled TCAM entry: exact tag match, bitmap port matches, rewrite
/// action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TcamEntry {
    /// Matched tag (exact).
    pub tag: Tag,
    /// Matched ingress ports (bitmap).
    pub in_ports: PortSet,
    /// Matched egress ports (bitmap).
    pub out_ports: PortSet,
    /// Rewrite action.
    pub new_tag: Tag,
}

impl TcamEntry {
    /// True if the entry matches the triple.
    pub fn matches(&self, tag: Tag, in_port: PortId, out_port: PortId) -> bool {
        self.tag == tag && self.in_ports.contains(in_port) && self.out_ports.contains(out_port)
    }

    /// True if every triple `other` matches, `self` matches too — under
    /// first-match lookup an earlier covering entry makes the later one
    /// dead (its action can never fire).
    pub fn covers(&self, other: &TcamEntry) -> bool {
        self.tag == other.tag
            && self.in_ports.is_superset(&other.in_ports)
            && self.out_ports.is_superset(&other.out_ports)
    }

    /// True if at least one triple matches both entries. A partial
    /// overlap with a *different* rewrite makes lookup order
    /// significant — a hazard worth flagging even when neither entry is
    /// fully dead.
    pub fn overlaps(&self, other: &TcamEntry) -> bool {
        self.tag == other.tag
            && self.in_ports.intersects(&other.in_ports)
            && self.out_ports.intersects(&other.out_ports)
    }

    /// Decompiles the entry back into the concrete exact-match rules it
    /// realizes on a switch with `num_ports` ports: the cross product of
    /// its ingress and egress bitmaps, clipped to the switch's real port
    /// map. Clipping matters for verification: a bitmap bit beyond the
    /// port count can never match a packet, so it is not part of the
    /// entry's installed behaviour.
    pub fn expand(&self, num_ports: u16) -> impl Iterator<Item = SwitchRule> + '_ {
        let (tag, new_tag) = (self.tag, self.new_tag);
        self.in_ports
            .iter()
            .filter(move |p| p.0 < num_ports)
            .flat_map(move |in_port| {
                self.out_ports
                    .iter()
                    .filter(move |p| p.0 < num_ports)
                    .map(move |out_port| SwitchRule {
                        tag,
                        in_port,
                        out_port,
                        new_tag,
                    })
            })
    }
}

/// How aggressively to compress.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Compression {
    /// One entry per exact-match rule (no compression) — the
    /// `n(n−1)·m(m−1)/2` baseline.
    None,
    /// Aggregate ingress ports per `(tag, out, new_tag)` — the paper's
    /// `n·m(m−1)/2` bound.
    InPort,
    /// Additionally merge egress ports with identical ingress sets per
    /// `(tag, new_tag)`.
    Joint,
}

/// The compiled TCAM of one switch.
#[derive(Clone, Debug, Default)]
pub struct Tcam {
    entries: Vec<TcamEntry>,
}

impl Tcam {
    /// Compiles one switch's rules at the given compression level.
    pub fn compile(rules: &[SwitchRule], level: Compression) -> Tcam {
        match level {
            Compression::None => Tcam {
                entries: rules
                    .iter()
                    .map(|r| TcamEntry {
                        tag: r.tag,
                        in_ports: PortSet::single(r.in_port),
                        out_ports: PortSet::single(r.out_port),
                        new_tag: r.new_tag,
                    })
                    .collect(),
            },
            Compression::InPort => {
                let mut groups: BTreeMap<(Tag, PortId, Tag), PortSet> = BTreeMap::new();
                for r in rules {
                    groups
                        .entry((r.tag, r.out_port, r.new_tag))
                        .or_default()
                        .insert(r.in_port);
                }
                Tcam {
                    entries: groups
                        .into_iter()
                        .map(|((tag, out, new_tag), in_ports)| TcamEntry {
                            tag,
                            in_ports,
                            out_ports: PortSet::single(out),
                            new_tag,
                        })
                        .collect(),
                }
            }
            Compression::Joint => {
                // (tag, new_tag) -> out_port -> in_ports
                let mut groups: BTreeMap<(Tag, Tag), BTreeMap<PortId, PortSet>> = BTreeMap::new();
                for r in rules {
                    groups
                        .entry((r.tag, r.new_tag))
                        .or_default()
                        .entry(r.out_port)
                        .or_default()
                        .insert(r.in_port);
                }
                let mut entries = Vec::new();
                for ((tag, new_tag), outs) in groups {
                    // Merge egress ports sharing an identical ingress set.
                    let mut by_inset: BTreeMap<PortSet, PortSet> = BTreeMap::new();
                    for (out, ins) in outs {
                        by_inset.entry(ins).or_default().insert(out);
                    }
                    for (in_ports, out_ports) in by_inset {
                        entries.push(TcamEntry {
                            tag,
                            in_ports,
                            out_ports,
                            new_tag,
                        });
                    }
                }
                Tcam { entries }
            }
        }
    }

    /// Builds a TCAM directly from entries, bypassing compilation.
    ///
    /// This is the hook independent verification tooling uses to model
    /// *arbitrary* installed tables — including miscompiled ones whose
    /// bitmaps are broader than any rule list would produce — so the
    /// decompile path can be exercised against tables that do not come
    /// from [`Tcam::compile`].
    pub fn from_entries(entries: Vec<TcamEntry>) -> Tcam {
        Tcam { entries }
    }

    /// The compiled entries.
    pub fn entries(&self) -> &[TcamEntry] {
        &self.entries
    }

    /// Decompiles the whole table back into concrete
    /// `(tag, in-port, out-port) → new-tag` rules against a switch with
    /// `num_ports` ports, first-match semantics preserved: where two
    /// entries overlap on a triple, the earlier entry wins, exactly as
    /// [`Tcam::decide`] would resolve the lookup. The result is sorted
    /// by `(tag, in, out)`.
    pub fn decompile(&self, num_ports: u16) -> Vec<SwitchRule> {
        let mut seen: BTreeMap<(Tag, PortId, PortId), Tag> = BTreeMap::new();
        for entry in &self.entries {
            for rule in entry.expand(num_ports) {
                seen.entry((rule.tag, rule.in_port, rule.out_port))
                    .or_insert(rule.new_tag);
            }
        }
        seen.into_iter()
            .map(|((tag, in_port, out_port), new_tag)| SwitchRule {
                tag,
                in_port,
                out_port,
                new_tag,
            })
            .collect()
    }

    /// Entry count (the hardware-budget figure).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// First-match lookup; the implicit final entry demotes to lossy.
    pub fn decide(&self, tag: Tag, in_port: PortId, out_port: PortId) -> TagDecision {
        for e in &self.entries {
            if e.matches(tag, in_port, out_port) {
                return TagDecision::Lossless(e.new_tag);
            }
        }
        TagDecision::Lossy
    }
}

/// Compiled TCAMs for every switch in a rule set.
#[derive(Clone, Debug, Default)]
pub struct TcamProgram {
    per_switch: BTreeMap<NodeId, Tcam>,
}

impl TcamProgram {
    /// Compiles all switches of a rule set.
    pub fn compile(topo: &Topology, rules: &RuleSet, level: Compression) -> TcamProgram {
        let mut per_switch = BTreeMap::new();
        for sw in topo.switch_ids() {
            let rs = rules.rules_for(sw);
            if !rs.is_empty() {
                per_switch.insert(sw, Tcam::compile(&rs, level));
            }
        }
        TcamProgram { per_switch }
    }

    /// Lookup on one switch.
    pub fn decide(&self, sw: NodeId, tag: Tag, in_port: PortId, out_port: PortId) -> TagDecision {
        self.per_switch
            .get(&sw)
            .map(|t| t.decide(tag, in_port, out_port))
            .unwrap_or(TagDecision::Lossy)
    }

    /// Total entries across switches.
    pub fn total_entries(&self) -> usize {
        self.per_switch.values().map(Tcam::len).sum()
    }

    /// Largest per-switch table.
    pub fn max_entries_per_switch(&self) -> usize {
        self.per_switch.values().map(Tcam::len).max().unwrap_or(0)
    }

    /// The TCAM of one switch, if it has rules.
    pub fn tcam_for(&self, sw: NodeId) -> Option<&Tcam> {
        self.per_switch.get(&sw)
    }

    /// Switches that carry at least one compiled entry.
    pub fn switches(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.per_switch.keys().copied()
    }

    /// Every installed entry as `(switch, entry index, entry)` triples,
    /// ordered by switch id then hardware priority (entry index = match
    /// order) — the iteration order external analysis tooling audits
    /// installed programs in.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, usize, &TcamEntry)> + '_ {
        self.per_switch.iter().flat_map(|(&sw, tcam)| {
            tcam.entries()
                .iter()
                .enumerate()
                .map(move |(i, e)| (sw, i, e))
        })
    }

    /// Installs one switch's table, replacing whatever was there — the
    /// building block verification tooling uses to model a fleet whose
    /// hardware tables may not be what the compiler intended.
    pub fn install(&mut self, sw: NodeId, tcam: Tcam) {
        self.per_switch.insert(sw, tcam);
    }

    /// Decompiles every switch's TCAM back into an exact-match
    /// [`RuleSet`] against the topology's real port map. The round-trip
    /// property verification leans on: for programs produced by
    /// [`TcamProgram::compile`], the result is semantically identical to
    /// the source rules on every in-range triple.
    pub fn decompile(&self, topo: &Topology) -> RuleSet {
        let mut rs = RuleSet::new();
        for (&sw, tcam) in &self.per_switch {
            let num_ports = topo.node(sw).num_ports() as u16;
            for rule in tcam.decompile(num_ports) {
                rs.set(sw, rule);
            }
        }
        rs
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::clos::clos_tagging;
    use crate::{Elp, Tagging};
    use tagger_topo::ClosConfig;

    fn all_triples(topo: &Topology, sw: NodeId, max_tag: u16) -> Vec<(Tag, PortId, PortId)> {
        let nports = topo.node(sw).num_ports() as u16;
        let mut v = Vec::new();
        for tag in 1..=max_tag {
            for i in 0..nports {
                for o in 0..nports {
                    v.push((Tag(tag), PortId(i), PortId(o)));
                }
            }
        }
        v
    }

    fn assert_equivalent(topo: &Topology, rules: &RuleSet, level: Compression) {
        let prog = TcamProgram::compile(topo, rules, level);
        let max_tag = rules.max_tag().map(|t| t.0 + 1).unwrap_or(1);
        for sw in topo.switch_ids() {
            for (tag, i, o) in all_triples(topo, sw, max_tag) {
                assert_eq!(
                    prog.decide(sw, tag, i, o),
                    rules.decide(sw, tag, i, o),
                    "mismatch at {sw} ({tag:?}, {i}, {o}) level {level:?}"
                );
            }
        }
    }

    #[test]
    fn portset_basics() {
        let mut s = PortSet::empty();
        assert!(s.is_empty());
        s.insert(PortId(3));
        s.insert(PortId(7));
        assert_eq!(s.len(), 2);
        assert!(s.contains(PortId(3)));
        assert!(!s.contains(PortId(4)));
        let v: Vec<PortId> = s.iter().collect();
        assert_eq!(v, vec![PortId(3), PortId(7)]);
    }

    #[test]
    fn all_levels_equivalent_on_clos_rules() {
        let topo = ClosConfig::small().build();
        let t = clos_tagging(&topo, 1).unwrap();
        for level in [Compression::None, Compression::InPort, Compression::Joint] {
            assert_equivalent(&topo, t.rules(), level);
        }
    }

    #[test]
    fn all_levels_equivalent_on_greedy_rules() {
        let topo = ClosConfig::small().build();
        let t = Tagging::from_elp(&topo, &Elp::updown(&topo)).unwrap();
        for level in [Compression::None, Compression::InPort, Compression::Joint] {
            assert_equivalent(&topo, t.rules(), level);
        }
    }

    #[test]
    fn compression_strictly_shrinks_tables() {
        let topo = ClosConfig::small().build();
        let t = clos_tagging(&topo, 2).unwrap();
        let none = TcamProgram::compile(&topo, t.rules(), Compression::None);
        let inport = TcamProgram::compile(&topo, t.rules(), Compression::InPort);
        let joint = TcamProgram::compile(&topo, t.rules(), Compression::Joint);
        assert!(inport.total_entries() < none.total_entries());
        assert!(joint.total_entries() <= inport.total_entries());
        assert_eq!(none.total_entries(), t.rules().num_rules());
    }

    #[test]
    fn clos_joint_compression_is_tiny() {
        // A Clos switch's behaviour is fully described by "bounce or not"
        // per tag: joint aggregation should need only a handful of entries
        // per switch.
        let topo = ClosConfig::small().build();
        let t = clos_tagging(&topo, 1).unwrap();
        let joint = TcamProgram::compile(&topo, t.rules(), Compression::Joint);
        // Leaves: {keep tag1, keep tag2, bounce 1->2} x in-set splits <= 6.
        assert!(
            joint.max_entries_per_switch() <= 8,
            "got {}",
            joint.max_entries_per_switch()
        );
    }

    #[test]
    fn decompile_round_trips_compiled_programs() {
        let topo = ClosConfig::small().build();
        let t = clos_tagging(&topo, 2).unwrap();
        for level in [Compression::None, Compression::InPort, Compression::Joint] {
            let prog = TcamProgram::compile(&topo, t.rules(), level);
            let back = prog.decompile(&topo);
            assert_eq!(&back, t.rules(), "round trip at {level:?}");
        }
    }

    #[test]
    fn expand_clips_to_the_real_port_map() {
        let mut in_ports = PortSet::empty();
        in_ports.insert(PortId(0));
        in_ports.insert(PortId(9)); // beyond the switch's port count
        let entry = TcamEntry {
            tag: Tag(1),
            in_ports,
            out_ports: PortSet::single(PortId(1)),
            new_tag: Tag(2),
        };
        let rules: Vec<SwitchRule> = entry.expand(4).collect();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].in_port, PortId(0));
    }

    #[test]
    fn decompile_respects_first_match_on_overlap() {
        // Two overlapping entries: first-match wins, so decompile must
        // report the first entry's rewrite for the shared triple.
        let first = TcamEntry {
            tag: Tag(1),
            in_ports: PortSet::single(PortId(0)),
            out_ports: PortSet::single(PortId(1)),
            new_tag: Tag(1),
        };
        let shadowed = TcamEntry {
            tag: Tag(1),
            in_ports: [PortId(0), PortId(2)].into_iter().collect(),
            out_ports: PortSet::single(PortId(1)),
            new_tag: Tag(2),
        };
        let tcam = Tcam::from_entries(vec![first, shadowed]);
        let rules = tcam.decompile(4);
        assert_eq!(rules.len(), 2);
        for r in rules {
            let expect = if r.in_port == PortId(0) {
                Tag(1)
            } else {
                Tag(2)
            };
            assert_eq!(r.new_tag, expect);
            assert_eq!(
                tcam.decide(r.tag, r.in_port, r.out_port),
                TagDecision::Lossless(expect)
            );
        }
    }

    #[test]
    fn covers_and_overlaps_follow_first_match_semantics() {
        let wide = TcamEntry {
            tag: Tag(1),
            in_ports: [PortId(0), PortId(1), PortId(2)].into_iter().collect(),
            out_ports: [PortId(3), PortId(4)].into_iter().collect(),
            new_tag: Tag(1),
        };
        let narrow = TcamEntry {
            tag: Tag(1),
            in_ports: PortSet::single(PortId(1)),
            out_ports: PortSet::single(PortId(3)),
            new_tag: Tag(2),
        };
        let disjoint = TcamEntry {
            tag: Tag(1),
            in_ports: PortSet::single(PortId(7)),
            out_ports: PortSet::single(PortId(3)),
            new_tag: Tag(2),
        };
        let other_tag = TcamEntry {
            tag: Tag(2),
            ..narrow
        };
        assert!(wide.covers(&narrow));
        assert!(!narrow.covers(&wide));
        assert!(wide.overlaps(&narrow));
        assert!(!wide.covers(&disjoint));
        assert!(!wide.overlaps(&disjoint));
        assert!(!wide.covers(&other_tag));
        assert!(!wide.overlaps(&other_tag));
        assert!(wide.in_ports.is_superset(&narrow.in_ports));
        assert!(!narrow.in_ports.is_superset(&wide.in_ports));
        assert!(wide.in_ports.intersects(&narrow.in_ports));
    }

    #[test]
    fn program_iteration_matches_per_switch_tables() {
        let topo = ClosConfig::small().build();
        let t = clos_tagging(&topo, 1).unwrap();
        let prog = TcamProgram::compile(&topo, t.rules(), Compression::Joint);
        assert_eq!(prog.iter().count(), prog.total_entries());
        for (sw, i, entry) in prog.iter() {
            assert_eq!(prog.tcam_for(sw).unwrap().entries()[i], *entry);
        }
    }

    #[test]
    fn unknown_switch_is_lossy() {
        let prog = TcamProgram::default();
        assert_eq!(
            prog.decide(NodeId(0), Tag(1), PortId(0), PortId(1)),
            TagDecision::Lossy
        );
    }
}
