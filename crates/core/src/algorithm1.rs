//! Algorithm 1: the brute-force tagging system.
//!
//! "A brute-force tagging system that increases the tag by one on every
//! hop" (paper, Algorithm 1). For each ELP path, the packet carries tag 1
//! into the first hop's ingress port, tag 2 into the second, and so on.
//! Every per-tag subgraph is trivially acyclic (a tag appears exactly once
//! per path, so edges within a tag don't exist at all for a single path;
//! across paths, same-tag nodes are never connected because every edge
//! bumps the tag), and tags grow monotonically — so the output always
//! verifies. The price is as many tags as the longest lossless route,
//! which Algorithm 2 then compresses.

use crate::{Elp, Tag, TaggedGraph, TaggedNode};
use tagger_routing::Path;
use tagger_topo::Topology;

/// Runs Algorithm 1 over an ELP given as any path iterator. The tag starts
/// at 1 on the first hop and increments on every subsequent hop.
pub fn tag_by_hop_count_iter<I>(topo: &Topology, paths: I) -> TaggedGraph
where
    I: IntoIterator,
    I::Item: std::borrow::Borrow<Path>,
{
    use std::borrow::Borrow;
    let mut g = TaggedGraph::new();
    for path in paths {
        let path = path.borrow();
        let mut tag = Tag::INITIAL;
        let mut last: Option<TaggedNode> = None;
        for ingress in path.ingress_ports(topo) {
            let node = TaggedNode { port: ingress, tag };
            g.add_node(node);
            if let Some(prev) = last {
                g.add_edge(prev, node);
            }
            last = Some(node);
            tag = tag.next();
        }
    }
    g
}

/// Runs Algorithm 1 over an [`Elp`].
pub fn tag_by_hop_count(topo: &Topology, elp: &Elp) -> TaggedGraph {
    tag_by_hop_count_iter(topo, elp.paths())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tagger_routing::Path;
    use tagger_topo::ClosConfig;

    #[test]
    fn single_path_tags_by_hop_index() {
        let topo = ClosConfig::small().build();
        let p = Path::from_names(&topo, &["H1", "T1", "L1", "S1", "L3", "T3", "H9"]);
        let g = tag_by_hop_count_iter(&topo, [&p]);
        // 6 hops -> 6 nodes, 5 edges, tags 1..=6.
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.max_tag(), Some(Tag(6)));
        // Switch-ingress tags are 1..=5 (tag 6 is at the host).
        assert_eq!(g.num_lossless_tags(&topo), 5);
        g.verify().unwrap();
    }

    #[test]
    fn shared_prefix_shares_nodes() {
        let topo = ClosConfig::small().build();
        let a = Path::from_names(&topo, &["H1", "T1", "L1", "S1", "L3", "T3", "H9"]);
        let b = Path::from_names(&topo, &["H1", "T1", "L1", "S1", "L4", "T4", "H13"]);
        let g = tag_by_hop_count_iter(&topo, [&a, &b]);
        // First 3 hops identical: 3 shared nodes + 2x3 distinct.
        assert_eq!(g.num_nodes(), 3 + 6);
        g.verify().unwrap();
    }

    #[test]
    fn whole_updown_elp_verifies() {
        let topo = ClosConfig::small().build();
        let elp = Elp::updown(&topo);
        let g = tag_by_hop_count(&topo, &elp);
        g.verify().unwrap();
        // Longest up-down path is 6 hops; switches see 5 distinct tags.
        assert_eq!(g.num_lossless_tags(&topo), 5);
    }

    #[test]
    fn bounce_elp_verifies_too() {
        // Algorithm 1 never creates a cycle even for bouncy ELPs — the tag
        // changes on every hop.
        let topo = ClosConfig::small().build();
        let elp = Elp::updown_with_bounces_capped(&topo, 1, 8);
        let g = tag_by_hop_count(&topo, &elp);
        g.verify().unwrap();
        assert!(g.num_lossless_tags(&topo) > 5); // bounce paths are longer
    }

    #[test]
    fn same_port_can_carry_multiple_tags() {
        let topo = ClosConfig::small().build();
        // The S1 ingress from L1 is hop 3 of H1->H9 but hop 2 of a path
        // starting at a T1-adjacent... actually from L1's other ToR: T2.
        let a = Path::from_names(&topo, &["H1", "T1", "L1", "S1", "L3", "T3", "H9"]);
        let b = Path::from_names(&topo, &["T2", "L1", "S1", "L3", "T3", "H9"]);
        let g = tag_by_hop_count_iter(&topo, [&a, &b]);
        let s1 = topo.expect_node("S1");
        let l1 = topo.expect_node("L1");
        let n2 = TaggedGraph::node_for(&topo, s1, l1, Tag(2));
        let n3 = TaggedGraph::node_for(&topo, s1, l1, Tag(3));
        assert!(g.contains_node(&n2));
        assert!(g.contains_node(&n3));
    }

    #[test]
    fn empty_elp_gives_empty_graph() {
        let topo = ClosConfig::small().build();
        let g = tag_by_hop_count(&topo, &Elp::default());
        assert!(g.is_empty());
        g.verify().unwrap();
    }
}
