//! Generic cyclic-buffer-dependency (CBD) detection.
//!
//! CBD is the necessary condition for PFC deadlock (paper §2): ingress
//! buffers waiting on each other in a loop. Given a set of paths and the
//! priority each packet uses per hop, the buffer-dependency graph is
//! exactly a [`TaggedGraph`] whose "tags" are priorities — so detection
//! reuses [`TaggedGraph::verify`]. This module provides the assemblers,
//! chiefly to demonstrate the *absence* of Tagger: an ELP with bounce
//! paths mapped onto a single lossless priority has a CBD, which is the
//! deadlock the paper's Figures 3 and 10–12 exhibit.

use crate::{Tag, TaggedGraph, TaggedNode};
use tagger_routing::Path;
use tagger_topo::{NodeKind, Topology};

/// Builds the buffer-dependency graph for `paths` when every packet rides
/// a single lossless priority end-to-end — the vanilla RoCE deployment
/// without Tagger.
pub fn single_priority_dependencies(topo: &Topology, paths: &[Path]) -> TaggedGraph {
    let mut g = TaggedGraph::new();
    for path in paths {
        let mut last: Option<TaggedNode> = None;
        for ingress in path.ingress_ports(topo) {
            // Host buffers do not generate PFC back-pressure dependencies
            // in this model; skip final host ingress nodes.
            let node = TaggedNode {
                port: ingress,
                tag: Tag(1),
            };
            if topo.node(ingress.node).kind == NodeKind::Switch {
                g.add_node(node);
            }
            if let Some(prev) = last {
                if topo.node(ingress.node).kind == NodeKind::Switch {
                    g.add_edge(prev, node);
                }
            }
            last = (topo.node(ingress.node).kind == NodeKind::Switch).then_some(node);
        }
    }
    g
}

/// True if the path set, on one shared lossless priority, contains a
/// cyclic buffer dependency — i.e. PFC deadlock is possible.
pub fn has_cbd(topo: &Topology, paths: &[Path]) -> bool {
    single_priority_dependencies(topo, paths).verify().is_err()
}

/// Returns a witness CBD cycle (ingress-port sequence), if one exists.
pub fn find_cbd(topo: &Topology, paths: &[Path]) -> Option<Vec<TaggedNode>> {
    single_priority_dependencies(topo, paths).find_cycle_in_tag(Tag(1))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tagger_routing::Path;
    use tagger_topo::ClosConfig;

    #[test]
    fn updown_paths_have_no_cbd() {
        // §3.2: up-down routing cannot create CBD.
        let topo = ClosConfig::small().build();
        let elp = crate::Elp::updown(&topo);
        assert!(!has_cbd(&topo, elp.paths()));
    }

    #[test]
    fn figure3_bounce_paths_create_cbd() {
        // The paper's Figure 3: green flow bounces at L1, blue at L3;
        // together they close the cycle L1 -> S1 -> L3 -> S2 -> L1.
        let topo = ClosConfig::small().build();
        // Green descends via S2 into L1, bounces up to S1; blue descends
        // via S1 into L3, bounces up to S2 — closing
        // L1 -> S1 -> L3 -> S2 -> L1.
        let green = Path::from_names(
            &topo,
            &["H9", "T3", "L3", "S2", "L1", "S1", "L2", "T1", "H1"],
        );
        let blue = Path::from_names(
            &topo,
            &["H1", "T1", "L1", "S1", "L3", "S2", "L4", "T4", "H13"],
        );
        assert!(has_cbd(&topo, &[green.clone(), blue.clone()]));
        let cycle = find_cbd(&topo, &[green, blue]).unwrap();
        assert!(cycle.len() >= 4);
    }

    #[test]
    fn single_bounce_path_alone_has_no_cbd() {
        let topo = ClosConfig::small().build();
        let green = Path::from_names(
            &topo,
            &["H9", "T3", "L3", "S2", "L1", "S1", "L2", "T1", "H1"],
        );
        assert!(!has_cbd(&topo, &[green]));
    }

    #[test]
    fn full_one_bounce_elp_has_cbd() {
        // The complete 1-bounce ELP on one priority is deadlock-prone —
        // the reason Tagger needs a second lossless priority.
        let topo = ClosConfig::small().build();
        let elp = crate::Elp::updown_with_bounces_capped(&topo, 1, 8);
        assert!(has_cbd(&topo, elp.paths()));
    }

    #[test]
    fn witness_cycle_edges_exist() {
        let topo = ClosConfig::small().build();
        let elp = crate::Elp::updown_with_bounces_capped(&topo, 1, 8);
        let g = single_priority_dependencies(&topo, elp.paths());
        let cycle = g.find_cycle_in_tag(Tag(1)).unwrap();
        for w in cycle.windows(2) {
            assert!(g.contains_edge(&(w[0], w[1])));
        }
    }
}
