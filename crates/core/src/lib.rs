//! # tagger-core — the Tagger algorithm
//!
//! Implements the contribution of *"Tagger: Practical PFC Deadlock
//! Prevention in Data Center Networks"* (Hu et al., CoNEXT 2017):
//!
//! - [`Elp`] — the operator-supplied set of *expected lossless paths*.
//! - [`TaggedGraph`] — the tagged graph `G(V, E)` of paper §5: nodes are
//!   `(ingress port, tag)` pairs, edges are tag-rewrite transitions. Its
//!   [`TaggedGraph::verify`] method checks the two requirements of
//!   Theorem 5.1 (per-tag acyclicity and tag monotonicity), which together
//!   certify deadlock freedom.
//! - [`tag_by_hop_count`] — Algorithm 1: the brute-force monotone tagging
//!   that increments the tag on every hop.
//! - [`greedy_minimize`] — Algorithm 2: greedy merging of brute-force tags
//!   into the fewest lossless priorities the heuristic can find.
//! - [`clos::clos_tagging`] — the Clos-specific construction of §4: tag =
//!   bounce count + 1, provably optimal at `k + 1` lossless priorities for
//!   ELPs with up to `k` bounces.
//! - [`RuleSet`] — per-switch `(tag, in-port, out-port) → new-tag`
//!   match-action rules derived from a tagged graph, with the lossy
//!   fallback of §4.2, and [`tcam`] — TCAM entries with the bit-mask
//!   compression of §7.
//! - [`multiclass`] — tag sharing across application classes (§6).
//! - [`cbd`] — a generic cyclic-buffer-dependency detector used to show
//!   that *without* Tagger the same path sets deadlock.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code paths reachable from user-supplied artifacts (table
// text, checkpoints) must return typed errors, never panic; test-only
// uses are allow-listed per test module.
#![warn(clippy::unwrap_used)]

mod algorithm1;
pub(crate) mod algorithm2;
pub mod cbd;
pub mod clos;
pub mod dscp;
mod elp;
mod graph;
pub mod multiclass;
pub mod oracle;
mod rules;
pub mod span;
pub mod tcam;

pub use algorithm1::{tag_by_hop_count, tag_by_hop_count_iter};
pub use algorithm2::{apply_assignment, greedy_assignment, greedy_minimize, minimize_elp};
pub use elp::Elp;
pub use graph::{Tag, TaggedEdge, TaggedGraph, TaggedNode, VerifyError};
pub use oracle::{decide, Feasible, Infeasible, Verdict, WitnessOrder, HARDWARE_TAG_CEILING};
pub use rules::{
    InstallError, RuleDelta, RuleError, RuleSet, SpannedRule, SwitchRule, TableTextError,
    TableTextParse, TagDecision, Tagging,
};
pub use span::Span;
