//! Multi-class tag sharing (paper §6).
//!
//! Operators often run several lossless application classes (e.g. data
//! and congestion-notification traffic). Naïvely, `N` classes each
//! tolerating `M` bounces would need `N · (M + 1)` priorities; the paper
//! shows `M + N` suffice by *offsetting*: class `c` (0-based) starts at
//! tag `1 + c` and bumps at each bounce, so its tags are
//! `1 + c ..= M + 1 + c` and the union spans `1 ..= M + N`. Isolation is
//! traded away only for bounced packets, which may share a queue with the
//! next class.

use crate::clos::{clos_tagging, ClosError};
use crate::{Tag, TaggedGraph, Tagging};
use tagger_topo::Topology;

/// The tag layout for `classes` application classes, each tolerating
/// `bounces` bounces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MultiClass {
    /// Number of application classes `N`.
    pub classes: u16,
    /// Bounce budget `M` per class.
    pub bounces: u16,
}

impl MultiClass {
    /// Initial tag for class `c` (0-based): `1 + c`.
    ///
    /// # Panics
    /// Panics if `c >= classes`.
    pub fn initial_tag(&self, c: u16) -> Tag {
        assert!(c < self.classes, "class {c} out of range");
        Tag(1 + c)
    }

    /// The inclusive tag range class `c` uses: `1 + c ..= M + 1 + c`.
    pub fn tag_range(&self, c: u16) -> (Tag, Tag) {
        (Tag(1 + c), Tag(self.bounces + 1 + c))
    }

    /// Total lossless tags consumed: `M + N` (paper §6), versus
    /// `N · (M + 1)` without sharing.
    pub fn total_tags(&self) -> u16 {
        self.bounces + self.classes
    }

    /// Tags saved versus the naïve per-class scheme.
    pub fn tags_saved(&self) -> u16 {
        self.classes * (self.bounces + 1) - self.total_tags()
    }

    /// Builds the shared Clos tagging: bump-on-bounce rules spanning tags
    /// `1 ..= M + N`. Classes are distinguished only by their initial tag;
    /// the rules are identical, so deadlock freedom follows from the
    /// single-class argument (monotone bumps, per-tag up-down segments).
    pub fn clos_tagging(&self, topo: &Topology) -> Result<Tagging, ClosError> {
        assert!(self.classes >= 1, "need at least one class");
        // Rules for max tag M + N = clos_tagging with k = M + N - 1.
        clos_tagging(topo, (self.total_tags() - 1) as usize)
    }

    /// The classes overlapping tag `t` — diagnostic for the isolation
    /// trade-off: more than one class means bounced traffic mixes there.
    pub fn classes_using(&self, t: Tag) -> Vec<u16> {
        (0..self.classes)
            .filter(|&c| {
                let (lo, hi) = self.tag_range(c);
                lo <= t && t <= hi
            })
            .collect()
    }
}

/// Generic multi-class composition for arbitrary topologies: the union of
/// `n` copies of a base tagged graph shifted by `0, 1, …, n − 1`. If the
/// base graph verifies, each shifted copy does; the union verifies
/// whenever per-tag unions stay acyclic, which
/// [`TaggedGraph::verify`] re-checks.
pub fn shifted_union(base: &TaggedGraph, n: u16) -> TaggedGraph {
    let mut out = TaggedGraph::new();
    for c in 0..n {
        out.union_with(&base.shifted(c));
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::{Elp, TagDecision};
    use tagger_topo::ClosConfig;

    #[test]
    fn tag_arithmetic_matches_paper() {
        let mc = MultiClass {
            classes: 3,
            bounces: 2,
        };
        assert_eq!(mc.total_tags(), 5); // M + N = 2 + 3
        assert_eq!(mc.tags_saved(), 9 - 5); // N(M+1) = 9 naive
        assert_eq!(mc.initial_tag(0), Tag(1));
        assert_eq!(mc.initial_tag(2), Tag(3));
        assert_eq!(mc.tag_range(1), (Tag(2), Tag(4)));
    }

    #[test]
    fn shared_tags_overlap_between_adjacent_classes() {
        let mc = MultiClass {
            classes: 2,
            bounces: 1,
        };
        // Tags: class 0 -> {1, 2}, class 1 -> {2, 3}: tag 2 is shared.
        assert_eq!(mc.classes_using(Tag(1)), vec![0]);
        assert_eq!(mc.classes_using(Tag(2)), vec![0, 1]);
        assert_eq!(mc.classes_using(Tag(3)), vec![1]);
    }

    #[test]
    fn clos_multiclass_verifies_and_counts() {
        let topo = ClosConfig::small().build();
        let mc = MultiClass {
            classes: 2,
            bounces: 1,
        };
        let t = mc.clos_tagging(&topo).unwrap();
        t.graph().verify().unwrap();
        assert_eq!(t.num_lossless_tags_on(&topo), 3); // M + N
    }

    #[test]
    fn class1_packets_ride_offset_tags() {
        let topo = ClosConfig::small().build();
        let mc = MultiClass {
            classes: 2,
            bounces: 1,
        };
        let t = mc.clos_tagging(&topo).unwrap();
        // A class-1 packet (initial tag 2) bouncing at L1 moves to tag 3;
        // a second bounce would exceed M + N = 3 and go lossy.
        let l1 = topo.expect_node("L1");
        let in_p = topo.port_towards(l1, topo.expect_node("S1")).unwrap();
        let out_p = topo.port_towards(l1, topo.expect_node("S2")).unwrap();
        assert_eq!(
            t.rules().decide(l1, mc.initial_tag(1), in_p, out_p),
            TagDecision::Lossless(Tag(3))
        );
        assert_eq!(
            t.rules().decide(l1, Tag(3), in_p, out_p),
            TagDecision::Lossy
        );
    }

    #[test]
    fn shifted_union_verifies_for_clos_base() {
        let topo = ClosConfig::small().build();
        let base = crate::algorithm2::minimize_elp(&topo, &Elp::updown(&topo));
        let union = shifted_union(&base, 3);
        union.verify().unwrap();
        assert_eq!(
            union.num_lossless_tags(&topo),
            base.num_lossless_tags(&topo) + 2
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn initial_tag_bounds_checked() {
        MultiClass {
            classes: 2,
            bounces: 0,
        }
        .initial_tag(2);
    }
}
