//! Algorithm 2: greedy minimization of the number of tags.
//!
//! Takes the brute-force tagged graph of Algorithm 1 and merges as many
//! old tags as possible into each new tag, subject to the CBD-free
//! constraint (paper §5.2). Old tags are scanned in increasing order; each
//! node is tentatively added to the current new-tag group, and kept there
//! only if the group's *port-projected* dependency graph stays acyclic —
//! otherwise the node is deferred to the next group. Because brute-force
//! edges always go from old tag `t` to `t + 1`, deferred nodes (all of old
//! tag `t`) have no edges among themselves, so the next group starts
//! acyclic, and the resulting tag assignment is monotone along every edge.
//!
//! The port projection matters: two graph nodes `(A_i, x)` and `(A_i, y)`
//! merged into one new tag become the *same* physical queue, so the cycle
//! check must identify them — this module projects sandbox nodes onto
//! ports before searching for cycles.
//!
//! ## A note on rule determinism
//!
//! The paper treats the merged graph as directly implementable, but the
//! merge can make two edges share a rule key `(switch, tag, in, out)`
//! while disagreeing on the rewrite — an ambiguity Algorithm 2 as
//! published does not exclude. This crate resolves it downstream:
//! [`crate::Tagging::from_elp`] compiles rules with min-resolution, adds
//! repair rules until every ELP path simulates losslessly, and verifies
//! the closure of what the final rules can express. See `DESIGN.md`.

use crate::{Tag, TaggedGraph, TaggedNode};
use std::collections::BTreeMap;
use tagger_topo::{GlobalPort, Topology};

/// Dense indexing of every port in the topology, so the hot cycle-check
/// loop runs on integer ids instead of `GlobalPort` maps.
struct PortIndexer {
    offsets: Vec<u32>,
}

impl PortIndexer {
    fn new(topo: &Topology) -> Self {
        let mut offsets = Vec::with_capacity(topo.num_nodes() + 1);
        let mut acc = 0u32;
        for n in topo.node_ids() {
            offsets.push(acc);
            acc += topo.node(n).num_ports() as u32;
        }
        offsets.push(acc);
        PortIndexer { offsets }
    }

    fn total(&self) -> usize {
        // `offsets` always ends with the grand total pushed above.
        self.offsets.last().copied().unwrap_or(0) as usize
    }

    fn pid(&self, p: GlobalPort) -> u32 {
        self.offsets[p.node.index()] + p.port.0 as u32
    }
}

/// Sandbox: the port-projected dependency graph of the current new-tag
/// group, supporting tentative node addition with rollback.
struct Sandbox {
    /// Out-adjacency with edge multiplicities (multiple merged graph nodes
    /// can contribute the same port-level edge).
    adj: Vec<BTreeMap<u32, u32>>,
    /// Epoch-stamped visited marks for DFS without clearing.
    visited: Vec<u32>,
    epoch: u32,
}

impl Sandbox {
    fn new(total_ports: usize) -> Self {
        Sandbox {
            adj: vec![BTreeMap::new(); total_ports],
            visited: vec![0; total_ports],
            epoch: 0,
        }
    }

    fn add_edges(&mut self, edges: &[(u32, u32)]) {
        for &(a, b) in edges {
            *self.adj[a as usize].entry(b).or_insert(0) += 1;
        }
    }

    fn remove_edges(&mut self, edges: &[(u32, u32)]) {
        for &(a, b) in edges {
            let m = self.adj[a as usize]
                .get_mut(&b)
                .expect("removing edge that was never added");
            *m -= 1;
            if *m == 0 {
                self.adj[a as usize].remove(&b);
            }
        }
    }

    /// DFS: is `start` reachable from itself? All fresh edges are incident
    /// to the candidate's port, so any new cycle must pass through it.
    fn has_cycle_through(&mut self, start: u32) -> bool {
        self.epoch += 1;
        let epoch = self.epoch;
        let mut stack: Vec<u32> = self.adj[start as usize].keys().copied().collect();
        while let Some(p) = stack.pop() {
            if p == start {
                return true;
            }
            if self.visited[p as usize] == epoch {
                continue;
            }
            self.visited[p as usize] = epoch;
            stack.extend(self.adj[p as usize].keys().copied());
        }
        false
    }

    fn clear(&mut self) {
        for m in &mut self.adj {
            m.clear();
        }
    }
}

/// Runs Algorithm 2 and returns the node-level re-tagging: for every node
/// of the input graph, the new (merged) tag it was assigned.
///
/// The input must be a monotone graph whose edges all go from tag `t` to
/// `t + 1` — i.e. the output of [`crate::tag_by_hop_count`].
pub fn greedy_assignment(topo: &Topology, g: &TaggedGraph) -> BTreeMap<TaggedNode, Tag> {
    // Index graph nodes and edges.
    let nodes: Vec<TaggedNode> = g.nodes().copied().collect();
    let index: BTreeMap<TaggedNode, usize> =
        nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    let mut in_edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (a, b) in g.edges() {
        let (ia, ib) = (index[a], index[b]);
        out_edges[ia].push(ib);
        in_edges[ib].push(ia);
    }

    // Group node indices by old tag, ascending; deterministic within a tag
    // because `nodes` is sorted.
    let mut by_tag: BTreeMap<Tag, Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        by_tag.entry(n.tag).or_default().push(i);
    }

    let ports = PortIndexer::new(topo);
    let mut sandbox = Sandbox::new(ports.total());
    // in_group[i]: node i is a member of the *current* new-tag group.
    let mut in_group = vec![false; nodes.len()];
    let mut new_tag = vec![0u16; nodes.len()];
    let mut current = 1u16;
    let mut pending: Vec<usize> = Vec::new();

    for (_, members) in by_tag {
        for v in members {
            let pv = ports.pid(nodes[v].port);
            // Project v's edges to/from current group members onto ports.
            let mut edges: Vec<(u32, u32)> = Vec::new();
            for &w in &out_edges[v] {
                if in_group[w] {
                    edges.push((pv, ports.pid(nodes[w].port)));
                }
            }
            for &u in &in_edges[v] {
                if in_group[u] {
                    edges.push((ports.pid(nodes[u].port), pv));
                }
            }
            sandbox.add_edges(&edges);
            if sandbox.has_cycle_through(pv) {
                sandbox.remove_edges(&edges);
                new_tag[v] = current + 1;
                pending.push(v);
            } else {
                in_group[v] = true;
                new_tag[v] = current;
            }
        }
        if !pending.is_empty() {
            // Open the next group, seeded with the deferred nodes. They
            // share one old tag, so no edges exist among them — the new
            // group starts acyclic. Cross-group edges are allowed; only
            // intra-group cycles matter.
            current += 1;
            sandbox.clear();
            in_group.iter_mut().for_each(|x| *x = false);
            for &v in &pending {
                in_group[v] = true;
            }
            pending.clear();
        }
    }

    nodes
        .into_iter()
        .zip(new_tag)
        .map(|(n, t)| (n, Tag(t)))
        .collect()
}

/// Applies a re-tagging to a graph: every node's tag is replaced by its
/// assigned tag, and edges are mapped accordingly (merging duplicates).
pub fn apply_assignment(g: &TaggedGraph, assignment: &BTreeMap<TaggedNode, Tag>) -> TaggedGraph {
    let renamed = |n: &TaggedNode| TaggedNode {
        port: n.port,
        tag: assignment[n],
    };
    let mut result = TaggedGraph::new();
    for n in g.nodes() {
        result.add_node(renamed(n));
    }
    for (a, b) in g.edges() {
        result.add_edge(renamed(a), renamed(b));
    }
    result
}

/// Runs Algorithm 2: re-tags the brute-force graph `g` greedily so that
/// the result uses as few tags as the heuristic manages, while satisfying
/// both Theorem 5.1 requirements (verified in debug builds).
pub fn greedy_minimize(topo: &Topology, g: &TaggedGraph) -> TaggedGraph {
    let assignment = greedy_assignment(topo, g);
    let result = apply_assignment(g, &assignment);
    debug_assert_eq!(result.verify(), Ok(()));
    result
}

/// Convenience: Algorithm 1 followed by Algorithm 2 over an ELP.
pub fn minimize_elp(topo: &Topology, elp: &crate::Elp) -> TaggedGraph {
    greedy_minimize(topo, &crate::tag_by_hop_count(topo, elp))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::{tag_by_hop_count, Elp};
    use tagger_routing::Path;
    use tagger_topo::ClosConfig;

    #[test]
    fn updown_clos_merges_to_one_tag() {
        // All up-down paths on a Clos have no CBD at all: one lossless
        // priority suffices (the paper's baseline observation, §3.2).
        let topo = ClosConfig::small().build();
        let elp = Elp::updown(&topo);
        let g = tag_by_hop_count(&topo, &elp);
        let merged = greedy_minimize(&topo, &g);
        merged.verify().unwrap();
        assert_eq!(merged.num_lossless_tags(&topo), 1);
    }

    #[test]
    fn merged_graph_never_has_more_tags_than_input() {
        let topo = ClosConfig::small().build();
        let elp = Elp::updown_with_bounces_capped(&topo, 1, 4);
        let g = tag_by_hop_count(&topo, &elp);
        let merged = greedy_minimize(&topo, &g);
        merged.verify().unwrap();
        assert!(merged.num_lossless_tags(&topo) <= g.num_lossless_tags(&topo));
    }

    #[test]
    fn one_bounce_clos_needs_at_most_three_tags() {
        // §5.3/Fig 6: the greedy algorithm is suboptimal on Clos 1-bounce
        // ELPs — it may use 3 tags where the optimal uses 2, but never
        // more.
        let topo = ClosConfig::small().build();
        let elp = Elp::updown_with_bounces(&topo, 1);
        let merged = minimize_elp(&topo, &elp);
        merged.verify().unwrap();
        let tags = merged.num_lossless_tags(&topo);
        assert!(
            (2..=3).contains(&tags),
            "expected 2-3 lossless tags, got {tags}"
        );
    }

    #[test]
    fn assignment_covers_every_node_monotonically() {
        let topo = ClosConfig::small().build();
        let elp = Elp::updown_with_bounces_capped(&topo, 1, 6);
        let g = tag_by_hop_count(&topo, &elp);
        let assignment = greedy_assignment(&topo, &g);
        assert_eq!(assignment.len(), g.num_nodes());
        for (a, b) in g.edges() {
            assert!(assignment[a] <= assignment[b], "{a:?} -> {b:?}");
        }
        // New tags never exceed old tags (merging only shrinks).
        for (n, t) in &assignment {
            assert!(*t <= n.tag);
        }
    }

    #[test]
    fn cyclic_single_tag_would_be_split() {
        // Build a 4-switch ring ELP whose segments, all in one tag, would
        // form a CBD; the greedy algorithm must use more than one tag.
        use tagger_topo::{Layer, Topology};
        let mut topo = Topology::new();
        let hs: Vec<_> = (0..4).map(|i| topo.add_host(format!("H{i}"))).collect();
        let ss: Vec<_> = (0..4)
            .map(|i| topo.add_switch(format!("R{i}"), Layer::Flat))
            .collect();
        for i in 0..4 {
            topo.connect(ss[i], ss[(i + 1) % 4]);
        }
        for i in 0..4 {
            topo.connect(hs[i], ss[i]);
        }
        let mut paths = Vec::new();
        for i in 0..4 {
            let nodes = vec![
                hs[i],
                ss[i],
                ss[(i + 1) % 4],
                ss[(i + 2) % 4],
                hs[(i + 2) % 4],
            ];
            paths.push(Path::new(&topo, nodes).unwrap());
        }
        let elp = Elp::from_paths(paths);
        let g = tag_by_hop_count(&topo, &elp);
        g.verify().unwrap();
        let merged = greedy_minimize(&topo, &g);
        merged.verify().unwrap();
        // The ring dependencies force at least 2 tags.
        assert!(merged.num_lossless_tags(&topo) >= 2);
    }

    #[test]
    fn empty_graph_stays_empty() {
        let topo = ClosConfig::small().build();
        let merged = greedy_minimize(&topo, &TaggedGraph::new());
        assert!(merged.is_empty());
    }

    #[test]
    fn single_path_merges_to_one_tag() {
        let topo = ClosConfig::small().build();
        let p = Path::from_names(&topo, &["H1", "T1", "L1", "S1", "L3", "T3", "H9"]);
        let elp = Elp::from_paths(vec![p]);
        let merged = minimize_elp(&topo, &elp);
        assert_eq!(merged.num_lossless_tags(&topo), 1);
    }

    #[test]
    fn deterministic_output() {
        let topo = ClosConfig::small().build();
        let elp = Elp::updown_with_bounces_capped(&topo, 1, 4);
        let a = minimize_elp(&topo, &elp);
        let b = minimize_elp(&topo, &elp);
        assert_eq!(a, b);
    }
}
