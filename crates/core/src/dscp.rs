//! DSCP encoding of tags (paper §7, Broadcom implementation).
//!
//! The hardware implementation carries the tag in the IP header's DSCP
//! field: DSCP-based ingress priority queueing classifies the packet,
//! an ingress ACL rewrites DSCP, and an ACL-based egress queueing step
//! places it by the new value. (TTL was considered and rejected — the
//! forwarding pipeline decrements it, §7.) This module provides the
//! Tag ↔ DSCP codec those three steps share.

use crate::Tag;

/// Maps tags to 6-bit DSCP codepoints.
///
/// Lossless tags `1..=max_tag` occupy `base + 1 ..= base + max_tag`;
/// everything else — including [`DscpCodec::LOSSY`] (best-effort 0) —
/// classifies as lossy. A non-zero `base` keeps Tagger's codepoints
/// clear of the operator's existing QoS plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DscpCodec {
    /// First codepoint minus one: tag `t` rides as DSCP `base + t`.
    pub base: u8,
    /// Largest lossless tag.
    pub max_tag: u16,
}

impl DscpCodec {
    /// The best-effort codepoint demoted packets ride on.
    pub const LOSSY: u8 = 0;

    /// Creates a codec; panics if the range would overflow 6 bits.
    pub fn new(base: u8, max_tag: u16) -> DscpCodec {
        assert!(
            (base as u16 + max_tag) < 64,
            "DSCP range {}..={} exceeds 6 bits",
            base + 1,
            base as u16 + max_tag
        );
        assert!(max_tag >= 1, "need at least one lossless tag");
        DscpCodec { base, max_tag }
    }

    /// Encodes a (possibly demoted) tag as a DSCP codepoint.
    pub fn encode(&self, tag: Option<Tag>) -> u8 {
        match tag {
            Some(Tag(t)) if t >= 1 && t <= self.max_tag => self.base + t as u8,
            _ => Self::LOSSY,
        }
    }

    /// Classifies a received DSCP codepoint: a lossless tag, or `None`
    /// for the lossy class (step 1 of the Fig. 7 pipeline).
    pub fn decode(&self, dscp: u8) -> Option<Tag> {
        if dscp > self.base && (dscp - self.base) as u16 <= self.max_tag {
            Some(Tag((dscp - self.base) as u16))
        } else {
            None
        }
    }

    /// The codepoints this codec reserves, in ascending order.
    pub fn reserved_codepoints(&self) -> Vec<u8> {
        (1..=self.max_tag).map(|t| self.base + t as u8).collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_lossless_tags() {
        let c = DscpCodec::new(40, 3);
        for t in 1..=3u16 {
            assert_eq!(c.decode(c.encode(Some(Tag(t)))), Some(Tag(t)));
        }
    }

    #[test]
    fn lossy_and_foreign_codepoints_classify_lossy() {
        let c = DscpCodec::new(40, 3);
        assert_eq!(c.encode(None), DscpCodec::LOSSY);
        assert_eq!(c.decode(DscpCodec::LOSSY), None);
        assert_eq!(c.decode(8), None); // operator's CS1, outside our range
        assert_eq!(c.decode(40), None); // base itself is not a tag
        assert_eq!(c.decode(44), None); // beyond max_tag
    }

    #[test]
    fn out_of_range_tags_demote_on_encode() {
        // A tag beyond the lossless range (bounced too often) encodes as
        // the lossy codepoint — the safeguard rule in DSCP terms.
        let c = DscpCodec::new(40, 2);
        assert_eq!(c.encode(Some(Tag(3))), DscpCodec::LOSSY);
    }

    #[test]
    fn reserved_codepoints_are_contiguous() {
        let c = DscpCodec::new(40, 3);
        assert_eq!(c.reserved_codepoints(), vec![41, 42, 43]);
    }

    #[test]
    #[should_panic(expected = "6 bits")]
    fn overflowing_range_panics() {
        DscpCodec::new(60, 8);
    }
}
