//! Source spans for text artifacts.
//!
//! Every Tagger input that arrives as text — rule-table dumps,
//! checkpoints, control-plane traces — reports parse and lint findings
//! with a [`Span`]: the 1-based line and column (and byte length) of the
//! offending token. The span type lives here, at the bottom of the crate
//! stack, so the parsers in `tagger-core`, `tagger-ctrl` and
//! `tagger-audit` and the diagnostics in `tagger-lint` all speak the
//! same coordinates.

use std::fmt;

/// A half-open byte range within one line of a text artifact.
///
/// Lines and columns are 1-based (editor convention); `len` is the byte
/// length of the highlighted token, 0 when the span points at a position
/// rather than a token (e.g. "something is missing here").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// 1-based line number. 0 means "the whole file" (no single line is
    /// to blame — a missing header, an empty input).
    pub line: usize,
    /// 1-based byte column within the line. 0 when `line` is 0.
    pub col: usize,
    /// Byte length of the highlighted token (0 = position only).
    pub len: usize,
}

impl Span {
    /// A span covering one token.
    pub fn new(line: usize, col: usize, len: usize) -> Span {
        Span { line, col, len }
    }

    /// A span pointing at the start of a line (whole-line findings).
    pub fn line_start(line: usize) -> Span {
        Span {
            line,
            col: 1,
            len: 0,
        }
    }

    /// The whole-file span, for findings no single line explains.
    pub fn whole_file() -> Span {
        Span {
            line: 0,
            col: 0,
            len: 0,
        }
    }

    /// True if this span points at the whole file rather than a line.
    pub fn is_whole_file(&self) -> bool {
        self.line == 0
    }

    /// Returns a copy shifted down by `lines` — how a parser embedded in
    /// a larger artifact (a table body inside a checkpoint) maps its
    /// local line numbers back to file coordinates.
    pub fn offset_lines(self, lines: usize) -> Span {
        if self.is_whole_file() {
            self
        } else {
            Span {
                line: self.line + lines,
                ..self
            }
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_whole_file() {
            write!(f, "(whole file)")
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

/// Splits one line into whitespace-separated words, yielding each word
/// with the 1-based byte column it starts at — the tokenizer every
/// line-oriented Tagger parser uses so its errors carry exact columns.
pub fn spanned_words(raw: &str) -> impl Iterator<Item = (usize, &str)> + '_ {
    let mut rest = raw;
    let mut consumed = 0usize;
    std::iter::from_fn(move || {
        let trimmed = rest.trim_start();
        consumed += rest.len() - trimmed.len();
        if trimmed.is_empty() {
            return None;
        }
        let end = trimmed.find(char::is_whitespace).unwrap_or(trimmed.len());
        let word = &trimmed[..end];
        let col = consumed + 1;
        rest = &trimmed[end..];
        consumed += end;
        Some((col, word))
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn spans_render_and_offset() {
        let s = Span::new(3, 7, 2);
        assert_eq!(s.to_string(), "3:7");
        assert_eq!(s.offset_lines(10), Span::new(13, 7, 2));
        let w = Span::whole_file();
        assert!(w.is_whole_file());
        assert_eq!(w.offset_lines(10), w);
        assert_eq!(w.to_string(), "(whole file)");
        assert_eq!(Span::line_start(5), Span::new(5, 1, 0));
    }

    #[test]
    fn spanned_words_reports_byte_columns() {
        let words: Vec<(usize, &str)> = spanned_words("  rule 1  L1 S2").collect();
        assert_eq!(words, vec![(3, "rule"), (8, "1"), (11, "L1"), (14, "S2")]);
        assert_eq!(spanned_words("").count(), 0);
        assert_eq!(spanned_words("   ").count(), 0);
        let one: Vec<_> = spanned_words("resync").collect();
        assert_eq!(one, vec![(1, "resync")]);
    }
}
