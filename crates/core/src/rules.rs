//! Per-switch match-action rules and the [`Tagging`] bundle.
//!
//! A tagged graph is a specification; switches execute *rules*: match on
//! `(tag, ingress port, egress port)`, rewrite the tag (paper §7, Fig. 7).
//! A packet that matches no rule has left the ELP and falls through to the
//! TCAM's final safeguard entry: it is demoted to the lossy class
//! ([`TagDecision::Lossy`]) so it can never trigger PFC.

use crate::span::{spanned_words, Span};
use crate::{Elp, Tag, TaggedGraph, TaggedNode, VerifyError};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use tagger_topo::{NodeId, NodeKind, PortId, Topology};

/// One match-action rule on one switch: packets arriving on `in_port`
/// carrying `tag`, about to leave via `out_port`, are rewritten to
/// `new_tag`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SwitchRule {
    /// Matched tag.
    pub tag: Tag,
    /// Matched ingress port.
    pub in_port: PortId,
    /// Matched egress port.
    pub out_port: PortId,
    /// Replacement tag.
    pub new_tag: Tag,
}

/// The verdict for a packet at a switch: stay lossless with a (possibly
/// rewritten) tag, or fall to the lossy class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TagDecision {
    /// Forward losslessly, carrying this tag (enqueue at the egress queue
    /// of this tag's priority — the Fig. 8 transition handling).
    Lossless(Tag),
    /// No rule matched: the packet left the ELP. Enqueue lossy; never
    /// send PFC on its behalf.
    Lossy,
}

/// Errors from rule derivation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuleError {
    /// Two graph edges compile to the same `(switch, tag, in, out)` match
    /// with different rewrites. The graph is ambiguous as a rule program.
    Conflict {
        /// Switch holding the conflicting rules.
        switch: NodeId,
        /// The two conflicting rules.
        rules: (SwitchRule, SwitchRule),
    },
    /// An ELP path escaped the lossless rules at the given hop — the rule
    /// set does not cover the ELP it was supposed to protect.
    ElpNotLossless {
        /// Index of the path in the ELP.
        path_index: usize,
        /// Hop at which the packet was demoted (0-based).
        hop: usize,
    },
    /// The induced tagged graph failed deadlock-freedom verification.
    NotDeadlockFree(VerifyError),
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::Conflict { switch, rules } => write!(
                f,
                "conflicting rules on switch {switch}: {:?} vs {:?}",
                rules.0, rules.1
            ),
            RuleError::ElpNotLossless { path_index, hop } => {
                write!(f, "ELP path #{path_index} demoted to lossy at hop {hop}")
            }
            RuleError::NotDeadlockFree(e) => write!(f, "not deadlock-free: {e}"),
        }
    }
}

impl std::error::Error for RuleError {}

/// Why a rule-table install on one switch failed — the error taxonomy a
/// control plane's southbound layer speaks.
///
/// The key property retries lean on: applying a [`RuleDelta`] is
/// *idempotent* (withdrawing an absent rule is a no-op, installing an
/// existing one overwrites in place), so after any of these errors the
/// installer may simply re-send the same delta; a switch that ends up
/// acking has exactly the delta applied, no matter how many partial or
/// unacknowledged attempts preceded it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InstallError {
    /// The switch rejected the update outright; no operations from the
    /// delta were applied.
    Refused,
    /// The switch did not acknowledge within the deadline. The delta may
    /// or may not have been applied — the installer must assume nothing
    /// and retry (safe by idempotence) or reconcile.
    Timeout,
    /// The switch applied only the first `applied_ops` operations
    /// (withdrawals first, then installs — [`RuleSet::apply_delta`]
    /// order) before failing, leaving its table in a known intermediate
    /// state.
    PartialApply {
        /// Operations applied before the failure, in delta order.
        applied_ops: usize,
    },
    /// The switch's table has no room for the installs in the delta.
    /// Retrying without shrinking the table cannot succeed.
    TableFull {
        /// The hardware table capacity, in rules.
        capacity: usize,
    },
}

impl InstallError {
    /// True if retrying the same delta can possibly succeed. Transient
    /// faults are retryable; a full table is not.
    pub fn is_retryable(&self) -> bool {
        !matches!(self, InstallError::TableFull { .. })
    }
}

impl fmt::Display for InstallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstallError::Refused => write!(f, "switch refused the update"),
            InstallError::Timeout => write!(f, "install timed out (apply state unknown)"),
            InstallError::PartialApply { applied_ops } => {
                write!(f, "partial apply: only {applied_ops} operation(s) landed")
            }
            InstallError::TableFull { capacity } => {
                write!(f, "table full (capacity {capacity} rules)")
            }
        }
    }
}

impl std::error::Error for InstallError {}

/// One switch's rule-table update: the difference between two deployed
/// [`RuleSet`]s, as shipped by an incremental control plane. A rule whose
/// match key survives but whose `new_tag` changes appears as a
/// remove-then-add pair, mirroring how a TCAM entry would be reinstalled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleDelta {
    /// The switch whose table changes.
    pub switch: NodeId,
    /// Rules to install.
    pub add: Vec<SwitchRule>,
    /// Rules to withdraw.
    pub remove: Vec<SwitchRule>,
}

impl RuleDelta {
    /// Number of table operations (installs + withdrawals) this delta
    /// performs — the churn figure compared against a full reinstall.
    pub fn len(&self) -> usize {
        self.add.len() + self.remove.len()
    }

    /// True if the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.add.is_empty() && self.remove.is_empty()
    }

    /// The delta that undoes this one: every install becomes a
    /// withdrawal and vice versa. Applying a delta and then its inverse
    /// restores the original table (withdrawals replay in apply order, so
    /// a remove-then-add rewrite pair inverts cleanly).
    pub fn inverse(&self) -> RuleDelta {
        RuleDelta {
            switch: self.switch,
            add: self.remove.clone(),
            remove: self.add.clone(),
        }
    }

    /// The delta's operations in apply order (withdrawals, then
    /// installs), as `(is_install, rule)` pairs — the granularity a
    /// partial apply is expressed in.
    pub fn ops(&self) -> impl Iterator<Item = (bool, SwitchRule)> + '_ {
        self.remove
            .iter()
            .map(|&r| (false, r))
            .chain(self.add.iter().map(|&r| (true, r)))
    }
}

/// The complete rule program: per-switch exact-match tables plus the
/// implicit lossy fallback.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuleSet {
    per_switch: BTreeMap<NodeId, BTreeMap<(Tag, PortId, PortId), Tag>>,
}

impl RuleSet {
    /// Creates an empty rule set (everything lossy).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rule; returns an error if it conflicts with an existing rule
    /// on the same switch.
    pub fn add(&mut self, switch: NodeId, rule: SwitchRule) -> Result<(), RuleError> {
        let key = (rule.tag, rule.in_port, rule.out_port);
        let table = self.per_switch.entry(switch).or_default();
        match table.get(&key) {
            None => {
                table.insert(key, rule.new_tag);
                Ok(())
            }
            Some(&existing) if existing == rule.new_tag => Ok(()),
            Some(&existing) => Err(RuleError::Conflict {
                switch,
                rules: (
                    SwitchRule {
                        new_tag: existing,
                        ..rule
                    },
                    rule,
                ),
            }),
        }
    }

    /// Compiles a tagged graph into rules: each edge
    /// `(A_i, x) → (B_j, y)` becomes the rule `(x, i, out(A→B_j)) → y` on
    /// switch `A`. Host-side sources contribute no rules (hosts inject
    /// packets with [`Tag::INITIAL`]).
    pub fn from_graph(topo: &Topology, g: &TaggedGraph) -> Result<RuleSet, RuleError> {
        let mut rs = RuleSet::new();
        for rule in Self::graph_rules(topo, g) {
            rs.add(rule.0, rule.1)?;
        }
        Ok(rs)
    }

    /// Like [`RuleSet::from_graph`], but when a merged graph compiles two
    /// edges to the same rule key with different rewrites, keeps the
    /// *smaller* new tag instead of failing. The resulting rules may not
    /// cover every ELP path; [`Tagging::from_elp`] repairs that.
    pub fn from_graph_resolving(topo: &Topology, g: &TaggedGraph) -> RuleSet {
        let mut rs = RuleSet::new();
        for (sw, rule) in Self::graph_rules(topo, g) {
            let key = (rule.tag, rule.in_port, rule.out_port);
            let table = rs.per_switch.entry(sw).or_default();
            match table.get(&key) {
                Some(&existing) if existing <= rule.new_tag => {}
                _ => {
                    table.insert(key, rule.new_tag);
                }
            }
        }
        rs
    }

    fn graph_rules<'a>(
        topo: &'a Topology,
        g: &'a TaggedGraph,
    ) -> impl Iterator<Item = (NodeId, SwitchRule)> + 'a {
        // Every edge source is a forwarding action and compiles to a rule
        // on that node — including *hosts* in server-centric fabrics like
        // BCube, where intermediate servers forward and rewrite tags in
        // software. Pure-sink host nodes have no out-edges, hence no
        // rules; packet injection needs no rule either (hosts inject with
        // `Tag::INITIAL`).
        g.edges().map(move |&(a, b)| {
            let egress = topo
                .peer_of(b.port)
                .expect("edge target port must be wired");
            assert_eq!(
                egress.node, a.port.node,
                "edge endpoints must be adjacent: {a:?} -> {b:?}"
            );
            (
                a.port.node,
                SwitchRule {
                    tag: a.tag,
                    in_port: a.port.port,
                    out_port: egress.port,
                    new_tag: b.tag,
                },
            )
        })
    }

    /// Inserts or overwrites a rule without conflict checking. Used by the
    /// ELP repair loop, which only ever fills in *missing* keys.
    pub fn set(&mut self, switch: NodeId, rule: SwitchRule) {
        self.per_switch
            .entry(switch)
            .or_default()
            .insert((rule.tag, rule.in_port, rule.out_port), rule.new_tag);
    }

    /// Computes the closure graph of everything these rules can express:
    /// starting from packets injected with [`Tag::INITIAL`] at every
    /// host-facing switch port (plus any extra seed nodes), repeatedly
    /// applies every matching rule over every egress. A packet in the
    /// network can only ever traverse edges of this graph — verifying it
    /// therefore certifies deadlock freedom under *any* routing, including
    /// loops and failures, not just the ELP.
    pub fn closure_graph(
        &self,
        topo: &Topology,
        extra_seeds: impl IntoIterator<Item = TaggedNode>,
    ) -> TaggedGraph {
        let mut g = TaggedGraph::new();
        let mut work: Vec<TaggedNode> = Vec::new();
        // Seeds: host-adjacent switch ingress ports at the initial tag.
        for sw in topo.switch_ids() {
            for (port, _, peer) in topo.neighbors(sw) {
                if topo.node(peer).kind == NodeKind::Host {
                    work.push(TaggedNode {
                        port: tagger_topo::GlobalPort::new(sw, port),
                        tag: Tag::INITIAL,
                    });
                }
            }
        }
        work.extend(extra_seeds);
        let mut seen = std::collections::BTreeSet::new();
        while let Some(node) = work.pop() {
            if !seen.insert(node) {
                continue;
            }
            g.add_node(node);
            // Follow rules at any node kind: forwarding hosts (BCube
            // servers) carry rules too; pure sinks have none and the walk
            // terminates there naturally.
            let sw = node.port.node;
            for (out_port, _, _) in topo.neighbors(sw) {
                if let TagDecision::Lossless(new_tag) =
                    self.decide(sw, node.tag, node.port.port, out_port)
                {
                    let to = topo
                        .peer_of(tagger_topo::GlobalPort::new(sw, out_port))
                        .expect("wired");
                    let next = TaggedNode {
                        port: to,
                        tag: new_tag,
                    };
                    g.add_edge(node, next);
                    work.push(next);
                }
            }
        }
        g
    }

    /// The forwarding decision for a lossless packet at `switch`.
    pub fn decide(
        &self,
        switch: NodeId,
        tag: Tag,
        in_port: PortId,
        out_port: PortId,
    ) -> TagDecision {
        match self
            .per_switch
            .get(&switch)
            .and_then(|t| t.get(&(tag, in_port, out_port)))
        {
            Some(&new_tag) => TagDecision::Lossless(new_tag),
            None => TagDecision::Lossy,
        }
    }

    /// All rules on one switch, sorted by `(tag, in, out)`.
    pub fn rules_for(&self, switch: NodeId) -> Vec<SwitchRule> {
        self.per_switch
            .get(&switch)
            .map(|t| {
                t.iter()
                    .map(|(&(tag, in_port, out_port), &new_tag)| SwitchRule {
                        tag,
                        in_port,
                        out_port,
                        new_tag,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Total rule count across all switches (before TCAM compression).
    pub fn num_rules(&self) -> usize {
        self.per_switch.values().map(BTreeMap::len).sum()
    }

    /// Largest rule count on any single switch — the TCAM-budget figure
    /// reported in the paper's Table 5.
    pub fn max_rules_per_switch(&self) -> usize {
        self.per_switch
            .values()
            .map(BTreeMap::len)
            .max()
            .unwrap_or(0)
    }

    /// Switches that carry at least one rule.
    pub fn switches(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.per_switch.keys().copied()
    }

    /// Rule count on one switch (0 if the switch carries no rules) — the
    /// cost of a full-table reinstall there.
    pub fn table_size(&self, switch: NodeId) -> usize {
        self.per_switch.get(&switch).map_or(0, BTreeMap::len)
    }

    /// Removes a rule if present (match key *and* rewrite must agree);
    /// returns whether anything was removed. Empty per-switch tables are
    /// dropped so `self` compares equal to a set that never knew the
    /// switch.
    pub fn remove(&mut self, switch: NodeId, rule: SwitchRule) -> bool {
        let key = (rule.tag, rule.in_port, rule.out_port);
        let Some(table) = self.per_switch.get_mut(&switch) else {
            return false;
        };
        let removed = match table.get(&key) {
            Some(&new_tag) if new_tag == rule.new_tag => {
                table.remove(&key);
                true
            }
            _ => false,
        };
        if table.is_empty() {
            self.per_switch.remove(&switch);
        }
        removed
    }

    /// The per-switch deltas transforming `self` into `target`, sorted by
    /// switch id; switches whose tables are identical emit nothing. A key
    /// present in both with a different rewrite becomes remove-then-add.
    ///
    /// `apply_delta`ing every returned delta onto a clone of `self` yields
    /// exactly `target` — the property an incremental control plane relies
    /// on when it ships deltas instead of full tables.
    pub fn diff(&self, target: &RuleSet) -> Vec<RuleDelta> {
        let switches: BTreeSet<NodeId> = self
            .per_switch
            .keys()
            .chain(target.per_switch.keys())
            .copied()
            .collect();
        let empty = BTreeMap::new();
        let mut deltas = Vec::new();
        for switch in switches {
            let old = self.per_switch.get(&switch).unwrap_or(&empty);
            let new = target.per_switch.get(&switch).unwrap_or(&empty);
            let mut delta = RuleDelta {
                switch,
                add: Vec::new(),
                remove: Vec::new(),
            };
            for (&(tag, in_port, out_port), &new_tag) in old {
                if new.get(&(tag, in_port, out_port)) != Some(&new_tag) {
                    delta.remove.push(SwitchRule {
                        tag,
                        in_port,
                        out_port,
                        new_tag,
                    });
                }
            }
            for (&(tag, in_port, out_port), &new_tag) in new {
                if old.get(&(tag, in_port, out_port)) != Some(&new_tag) {
                    delta.add.push(SwitchRule {
                        tag,
                        in_port,
                        out_port,
                        new_tag,
                    });
                }
            }
            if !delta.is_empty() {
                deltas.push(delta);
            }
        }
        deltas
    }

    /// Applies one switch's delta: withdrawals first, then installs —
    /// the order a remove-then-add rewrite change requires.
    pub fn apply_delta(&mut self, delta: &RuleDelta) {
        for &rule in &delta.remove {
            self.remove(delta.switch, rule);
        }
        for &rule in &delta.add {
            self.set(delta.switch, rule);
        }
    }

    /// Largest `new_tag` reachable through any rule, or `None` if empty.
    pub fn max_tag(&self) -> Option<Tag> {
        self.per_switch
            .values()
            .flat_map(|t| t.values().copied().chain(t.keys().map(|k| k.0)))
            .max()
    }

    /// Every rule in the set as `(switch, rule)` pairs, ordered by
    /// switch id then `(tag, in, out)` — the iteration order external
    /// verification tooling audits tables in.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, SwitchRule)> + '_ {
        self.per_switch.iter().flat_map(|(&sw, table)| {
            table
                .iter()
                .map(move |(&(tag, in_port, out_port), &new_tag)| {
                    (
                        sw,
                        SwitchRule {
                            tag,
                            in_port,
                            out_port,
                            new_tag,
                        },
                    )
                })
        })
    }

    /// Serializes the tables as plain text, resolving ports to the names
    /// of the neighbours they face so the dump is readable and stable
    /// across port renumberings:
    ///
    /// ```text
    /// switch L1
    /// rule <tag> <in-neighbour> <out-neighbour> <new-tag>
    /// ```
    ///
    /// Round-trips through [`RuleSet::from_table_text`] on the same
    /// topology.
    pub fn to_table_text(&self, topo: &Topology) -> String {
        let peer_name = |sw: NodeId, port: PortId| -> String {
            match topo.peer_of(tagger_topo::GlobalPort::new(sw, port)) {
                Some(gp) => topo.node(gp.node).name.clone(),
                None => format!("#{}", port.0),
            }
        };
        let mut out = String::new();
        for sw in self.switches() {
            out.push_str(&format!("switch {}\n", topo.node(sw).name));
            for r in self.rules_for(sw) {
                out.push_str(&format!(
                    "rule {} {} {} {}\n",
                    r.tag.0,
                    peer_name(sw, r.in_port),
                    peer_name(sw, r.out_port),
                    r.new_tag.0
                ));
            }
        }
        out
    }

    /// Parses tables serialized by [`RuleSet::to_table_text`]. Lines
    /// starting with `#` and blank lines are ignored. Unknown switch or
    /// neighbour names, a port index the switch does not have, or a
    /// `rule` line outside a `switch` block, are errors; the first one
    /// is returned with the exact span of the offending token. When a
    /// match key appears twice, the later line wins (last-write-wins) —
    /// [`RuleSet::parse_table_text_lenient`] exposes the duplicates for
    /// tooling that wants to flag them.
    pub fn from_table_text(topo: &Topology, text: &str) -> Result<RuleSet, TableTextError> {
        let parse = Self::parse_table_text_lenient(topo, text);
        if let Some(e) = parse.errors.into_iter().next() {
            return Err(e);
        }
        let mut rs = RuleSet::new();
        for sr in parse.rules {
            rs.set(sr.switch, sr.rule);
        }
        Ok(rs)
    }

    /// The lint-grade table-text parser: keeps going past errors,
    /// records a [`Span`] for every parsed rule line and every failure,
    /// and preserves file order (so duplicate match keys are visible —
    /// [`RuleSet::from_table_text`] resolves them last-write-wins, a
    /// first-match TCAM would resolve them the other way around).
    ///
    /// Rule lines inside a `switch` block whose name failed to resolve
    /// are swallowed (one error for the header, not one per rule).
    pub fn parse_table_text_lenient(topo: &Topology, text: &str) -> TableTextParse {
        let mut out = TableTextParse {
            rules: Vec::new(),
            errors: Vec::new(),
        };
        // None: no switch header yet; Some(None): header seen but its
        // name did not resolve (swallow the section); Some(Some(sw)): ok.
        let mut current: Option<Option<NodeId>> = None;
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let words: Vec<(usize, &str)> = spanned_words(raw).collect();
            let err = |out: &mut TableTextParse, (col, tok): (usize, &str), why: String| {
                out.errors.push(TableTextError {
                    span: Span::new(lineno, col, tok.len()),
                    why,
                });
            };
            match words[0].1 {
                "switch" => {
                    let Some(&name) = words.get(1) else {
                        err(&mut out, words[0], "switch wants a node name".to_string());
                        current = Some(None);
                        continue;
                    };
                    match topo.node_by_name(name.1) {
                        Some(sw) => current = Some(Some(sw)),
                        None => {
                            err(&mut out, name, format!("unknown switch {:?}", name.1));
                            current = Some(None);
                        }
                    }
                }
                "rule" => {
                    let sw = match current {
                        None => {
                            err(
                                &mut out,
                                words[0],
                                "rule before any switch line".to_string(),
                            );
                            continue;
                        }
                        Some(None) => continue, // section header already errored
                        Some(Some(sw)) => sw,
                    };
                    if words.len() != 5 {
                        err(
                            &mut out,
                            words[0],
                            format!(
                                "rule wants <tag> <in> <out> <new-tag>, got {} argument(s)",
                                words.len() - 1
                            ),
                        );
                        continue;
                    }
                    let num = |out: &mut TableTextParse, w: (usize, &str), what: &str| {
                        let v: Option<u16> = w.1.parse().ok();
                        if v.is_none() {
                            err(out, w, format!("bad {what} {:?}", w.1));
                        }
                        v
                    };
                    let port = |out: &mut TableTextParse, w: (usize, &str)| -> Option<PortId> {
                        if let Some(n) = w.1.strip_prefix('#') {
                            let Ok(p) = n.parse::<u16>() else {
                                err(out, w, format!("bad port {:?}", w.1));
                                return None;
                            };
                            if p as usize >= topo.node(sw).num_ports() {
                                err(out, w, format!("{} has no port {p}", topo.node(sw).name));
                                return None;
                            }
                            return Some(PortId(p));
                        }
                        let Some(peer) = topo.node_by_name(w.1) else {
                            err(out, w, format!("unknown neighbour {:?}", w.1));
                            return None;
                        };
                        let towards = topo.port_towards(sw, peer);
                        if towards.is_none() {
                            err(
                                out,
                                w,
                                format!("{} has no port towards {}", topo.node(sw).name, w.1),
                            );
                        }
                        towards
                    };
                    let tag = num(&mut out, words[1], "tag");
                    let in_port = port(&mut out, words[2]);
                    let out_port = port(&mut out, words[3]);
                    let new_tag = num(&mut out, words[4], "new-tag");
                    let (Some(tag), Some(in_port), Some(out_port), Some(new_tag)) =
                        (tag, in_port, out_port, new_tag)
                    else {
                        continue;
                    };
                    let last = words[words.len() - 1];
                    out.rules.push(SpannedRule {
                        switch: sw,
                        rule: SwitchRule {
                            tag: Tag(tag),
                            in_port,
                            out_port,
                            new_tag: Tag(new_tag),
                        },
                        span: Span::new(lineno, words[0].0, last.0 + last.1.len() - words[0].0),
                    });
                }
                _ => err(&mut out, words[0], format!("unrecognized line {line:?}")),
            }
        }
        out
    }
}

/// One rule as it appeared in a table-text dump, with the span of its
/// `rule` line — the coordinates lint diagnostics point at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpannedRule {
    /// The switch the enclosing `switch` block named.
    pub switch: NodeId,
    /// The parsed rule.
    pub rule: SwitchRule,
    /// Span of the whole `rule ...` line content.
    pub span: Span,
}

/// Everything a lenient table-text parse recovered: the rules in file
/// order (duplicates included) plus every malformed line.
#[derive(Clone, Debug, Default)]
pub struct TableTextParse {
    /// Successfully parsed rules, in file order.
    pub rules: Vec<SpannedRule>,
    /// Malformed lines, in file order.
    pub errors: Vec<TableTextError>,
}

/// A malformed line in a [`RuleSet::from_table_text`] dump.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableTextError {
    /// Where the offending token sits.
    pub span: Span,
    /// What was wrong with it.
    pub why: String,
}

impl fmt::Display for TableTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "table text line {}: {}", self.span, self.why)
    }
}

impl std::error::Error for TableTextError {}

/// A complete tagging scheme: the verified graph plus the compiled rules.
///
/// This is what gets "deployed": the graph is the deadlock-freedom
/// certificate, the rules are what switches execute.
#[derive(Clone, Debug)]
pub struct Tagging {
    graph: TaggedGraph,
    rules: RuleSet,
    repairs: usize,
    used_fallback: bool,
}

impl Tagging {
    /// Bundles a graph and its rules. Verifies the graph.
    pub fn new(graph: TaggedGraph, rules: RuleSet) -> Result<Self, RuleError> {
        graph.verify().map_err(RuleError::NotDeadlockFree)?;
        Ok(Tagging {
            graph,
            rules,
            repairs: 0,
            used_fallback: false,
        })
    }

    /// The full pipeline over an ELP:
    ///
    /// 1. Algorithm 1 (brute-force tagging), Algorithm 2 (greedy merge);
    /// 2. rule compilation with min-resolution of merge ambiguities;
    /// 3. a *repair fixpoint*: simulate every ELP path through the rules,
    ///    and wherever a path falls off the lossless rules (possible
    ///    because the published Algorithm 2 does not guarantee rule
    ///    determinism — see `DESIGN.md`), add the missing rule, steering
    ///    the packet back onto its greedy-assigned trajectory;
    /// 4. certification: the closure of everything the final rules can
    ///    express is verified against Theorem 5.1. If that ever fails,
    ///    fall back to the always-safe brute-force tagging
    ///    ([`Tagging::used_fallback`] reports it).
    pub fn from_elp(topo: &Topology, elp: &Elp) -> Result<Self, RuleError> {
        let brute = crate::tag_by_hop_count(topo, elp);
        let assignment = crate::algorithm2::greedy_assignment(topo, &brute);
        let merged = crate::algorithm2::apply_assignment(&brute, &assignment);
        let mut rules = RuleSet::from_graph_resolving(topo, &merged);

        // Repair fixpoint: every iteration adds at least one rule at a
        // previously-missing key; keys are finite, so this terminates.
        let mut repairs = 0usize;
        loop {
            let mut added = false;
            for path in elp.paths() {
                let mut tag = Tag::INITIAL;
                let ingresses: Vec<_> = path.ingress_ports(topo).collect();
                for (hop, pair) in ingresses.windows(2).enumerate() {
                    let here = pair[0];
                    let next = pair[1];
                    let egress = topo.peer_of(next).expect("wired");
                    match rules.decide(here.node, tag, here.port, egress.port) {
                        TagDecision::Lossless(t) => tag = t,
                        TagDecision::Lossy => {
                            // The greedy-assigned tag of the next hop's
                            // original (port, hop-count) node; raising to
                            // at least the current tag keeps rules
                            // monotone.
                            let expected = assignment[&TaggedNode {
                                port: next,
                                tag: Tag((hop + 2) as u16),
                            }];
                            let new_tag = expected.max(tag);
                            rules.set(
                                here.node,
                                SwitchRule {
                                    tag,
                                    in_port: here.port,
                                    out_port: egress.port,
                                    new_tag,
                                },
                            );
                            repairs += 1;
                            added = true;
                            tag = new_tag;
                        }
                    }
                }
            }
            if !added {
                break;
            }
        }

        // Certify the closure of the final rules.
        let seeds = elp.paths().iter().filter_map(|p| {
            p.ingress_ports(topo).next().map(|port| TaggedNode {
                port,
                tag: Tag::INITIAL,
            })
        });
        let closure = rules.closure_graph(topo, seeds);
        let t = match closure.verify() {
            Ok(()) => Tagging {
                graph: closure,
                rules,
                repairs,
                used_fallback: false,
            },
            Err(_) => {
                // Safe fallback: the brute-force tagging is deterministic
                // (new tag = old tag + 1 everywhere), so strict rule
                // compilation cannot conflict, and its closure is
                // monotone-by-hop-count hence acyclic per tag.
                let rules = RuleSet::from_graph(topo, &brute)?;
                let seeds = elp.paths().iter().filter_map(|p| {
                    p.ingress_ports(topo).next().map(|port| TaggedNode {
                        port,
                        tag: Tag::INITIAL,
                    })
                });
                let closure = rules.closure_graph(topo, seeds);
                closure.verify().map_err(RuleError::NotDeadlockFree)?;
                Tagging {
                    graph: closure,
                    rules,
                    repairs,
                    used_fallback: true,
                }
            }
        };
        t.check_elp_lossless(topo, elp)?;
        Ok(t)
    }

    /// How many repair rules the ELP fixpoint had to add (0 when the
    /// greedy merge compiled cleanly).
    pub fn repairs(&self) -> usize {
        self.repairs
    }

    /// True if certification failed on the merged scheme and the
    /// brute-force tagging was deployed instead.
    pub fn used_fallback(&self) -> bool {
        self.used_fallback
    }

    /// The deadlock-freedom certificate.
    pub fn graph(&self) -> &TaggedGraph {
        &self.graph
    }

    /// The compiled rules.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// Number of lossless priorities consumed at switches.
    pub fn num_lossless_tags_on(&self, topo: &Topology) -> usize {
        self.graph.num_lossless_tags(topo)
    }

    /// Simulates every ELP path through the rules and checks that no hop
    /// is demoted to lossy: the losslessness half of Tagger's guarantee.
    pub fn check_elp_lossless(&self, topo: &Topology, elp: &Elp) -> Result<(), RuleError> {
        for (path_index, path) in elp.paths().iter().enumerate() {
            let mut tag = Tag::INITIAL;
            let ingresses: Vec<_> = path.ingress_ports(topo).collect();
            // Walk switch hops: at each intermediate switch the packet is
            // matched against (tag, in, out).
            for (hop, pair) in ingresses.windows(2).enumerate() {
                let here = pair[0]; // ingress at current switch
                let next = pair[1]; // ingress at next node
                let egress = topo.peer_of(next).expect("wired");
                debug_assert_eq!(egress.node, here.node);
                match self.rules.decide(here.node, tag, here.port, egress.port) {
                    TagDecision::Lossless(t) => tag = t,
                    TagDecision::Lossy => {
                        return Err(RuleError::ElpNotLossless { path_index, hop });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::Elp;
    use tagger_routing::Path;
    use tagger_topo::ClosConfig;

    #[test]
    fn from_elp_pipeline_on_updown_clos() {
        let topo = ClosConfig::small().build();
        let elp = Elp::updown(&topo);
        let t = Tagging::from_elp(&topo, &elp).unwrap();
        assert_eq!(t.num_lossless_tags_on(&topo), 1);
        // Spot check: a packet on an up-down path keeps tag 1 at T1.
        let t1 = topo.expect_node("T1");
        let in_port = topo.port_towards(t1, topo.expect_node("H1")).unwrap();
        let out_port = topo.port_towards(t1, topo.expect_node("L1")).unwrap();
        assert_eq!(
            t.rules().decide(t1, Tag(1), in_port, out_port),
            TagDecision::Lossless(Tag(1))
        );
    }

    #[test]
    fn off_elp_hop_is_demoted() {
        let topo = ClosConfig::small().build();
        let elp = Elp::updown(&topo);
        let t = Tagging::from_elp(&topo, &elp).unwrap();
        // A bounce at L1 (in from S1, out to S2) is not in the up-down
        // ELP: lossy.
        let l1 = topo.expect_node("L1");
        let in_port = topo.port_towards(l1, topo.expect_node("S1")).unwrap();
        let out_port = topo.port_towards(l1, topo.expect_node("S2")).unwrap();
        assert_eq!(
            t.rules().decide(l1, Tag(1), in_port, out_port),
            TagDecision::Lossy
        );
    }

    #[test]
    fn elp_lossless_check_catches_missing_paths() {
        let topo = ClosConfig::small().build();
        let elp = Elp::updown(&topo);
        let t = Tagging::from_elp(&topo, &elp).unwrap();
        // A 1-bounce path is not covered by the up-down tagging.
        let bouncy = Path::from_names(
            &topo,
            &["H9", "T3", "L3", "S1", "L1", "S2", "L2", "T1", "H1"],
        );
        let err = t
            .check_elp_lossless(&topo, &Elp::from_paths(vec![bouncy]))
            .unwrap_err();
        assert!(matches!(err, RuleError::ElpNotLossless { .. }));
    }

    #[test]
    fn one_bounce_elp_stays_lossless_end_to_end() {
        let topo = ClosConfig::small().build();
        let elp = Elp::updown_with_bounces(&topo, 1);
        let t = Tagging::from_elp(&topo, &elp).unwrap();
        // from_elp already checks; checking again is free.
        t.check_elp_lossless(&topo, &elp).unwrap();
        assert!(t.num_lossless_tags_on(&topo) <= 3);
    }

    #[test]
    fn conflicting_rules_are_rejected() {
        let topo = ClosConfig::small().build();
        let t1 = topo.expect_node("T1");
        let mut rs = RuleSet::new();
        let r = SwitchRule {
            tag: Tag(1),
            in_port: PortId(0),
            out_port: PortId(1),
            new_tag: Tag(1),
        };
        rs.add(t1, r).unwrap();
        rs.add(t1, r).unwrap(); // identical: fine
        let err = rs
            .add(
                t1,
                SwitchRule {
                    new_tag: Tag(2),
                    ..r
                },
            )
            .unwrap_err();
        assert!(matches!(err, RuleError::Conflict { .. }));
    }

    #[test]
    fn rule_counts_are_reported() {
        let topo = ClosConfig::small().build();
        let elp = Elp::updown(&topo);
        let t = Tagging::from_elp(&topo, &elp).unwrap();
        assert!(t.rules().num_rules() > 0);
        assert!(t.rules().max_rules_per_switch() <= t.rules().num_rules());
        assert!(t.rules().max_tag().is_some());
    }

    #[test]
    fn closure_rejects_unsafe_single_priority_rules() {
        // Adversarial program: keep tag 1 across EVERY (in, out) pair of
        // every switch — bounces included. Its closure contains the
        // bounce CBD, and the Theorem 5.1 verifier must reject it.
        let topo = ClosConfig::small().build();
        let mut rs = RuleSet::new();
        for sw in topo.switch_ids() {
            let ports: Vec<_> = topo.neighbors(sw).map(|(p, _, _)| p).collect();
            for &i in &ports {
                for &o in &ports {
                    if i != o {
                        rs.add(
                            sw,
                            SwitchRule {
                                tag: Tag(1),
                                in_port: i,
                                out_port: o,
                                new_tag: Tag(1),
                            },
                        )
                        .unwrap();
                    }
                }
            }
        }
        let closure = rs.closure_graph(&topo, []);
        assert!(matches!(
            closure.verify(),
            Err(crate::VerifyError::CyclicTag(_, _))
        ));
        // The same machinery accepts the safe Clos program.
        let safe = crate::clos::clos_tagging(&topo, 1).unwrap();
        let safe_closure = safe.rules().closure_graph(&topo, []);
        safe_closure.verify().unwrap();
    }

    #[test]
    fn closure_contains_everything_the_elp_exercises() {
        let topo = ClosConfig::small().build();
        let elp = Elp::updown_with_bounces_capped(&topo, 1, 6);
        let t = Tagging::from_elp(&topo, &elp).unwrap();
        // Simulate each path and check every visited (port, tag) node is
        // in the certificate graph.
        for path in elp.paths() {
            let mut tag = Tag::INITIAL;
            let ingresses: Vec<_> = path.ingress_ports(&topo).collect();
            for (i, &ingress) in ingresses.iter().enumerate() {
                let node = crate::TaggedNode { port: ingress, tag };
                assert!(
                    t.graph().contains_node(&node),
                    "{node:?} missing from certificate"
                );
                if i + 1 < ingresses.len() {
                    let egress = topo.peer_of(ingresses[i + 1]).unwrap();
                    match t
                        .rules()
                        .decide(ingress.node, tag, ingress.port, egress.port)
                    {
                        TagDecision::Lossless(next) => tag = next,
                        TagDecision::Lossy => panic!("ELP path demoted"),
                    }
                }
            }
        }
    }

    fn rule(tag: u16, in_port: u16, out_port: u16, new_tag: u16) -> SwitchRule {
        SwitchRule {
            tag: Tag(tag),
            in_port: PortId(in_port),
            out_port: PortId(out_port),
            new_tag: Tag(new_tag),
        }
    }

    #[test]
    fn diff_of_identical_sets_is_empty() {
        let mut rs = RuleSet::new();
        rs.add(NodeId(3), rule(1, 0, 1, 2)).unwrap();
        rs.add(NodeId(7), rule(2, 1, 0, 2)).unwrap();
        assert!(rs.diff(&rs.clone()).is_empty());
        assert!(RuleSet::new().diff(&RuleSet::new()).is_empty());
    }

    #[test]
    fn diff_add_only() {
        let mut old = RuleSet::new();
        old.add(NodeId(1), rule(1, 0, 1, 1)).unwrap();
        let mut new = old.clone();
        new.add(NodeId(1), rule(1, 2, 3, 2)).unwrap();
        new.add(NodeId(4), rule(1, 0, 1, 1)).unwrap();
        let deltas = old.diff(&new);
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0].switch, NodeId(1));
        assert_eq!(deltas[0].add, vec![rule(1, 2, 3, 2)]);
        assert!(deltas[0].remove.is_empty());
        assert_eq!(deltas[1].switch, NodeId(4));
        assert_eq!(deltas[1].add, vec![rule(1, 0, 1, 1)]);
        assert!(deltas[1].remove.is_empty());
    }

    #[test]
    fn diff_remove_only() {
        let mut old = RuleSet::new();
        old.add(NodeId(1), rule(1, 0, 1, 1)).unwrap();
        old.add(NodeId(1), rule(2, 0, 1, 2)).unwrap();
        let mut new = old.clone();
        assert!(new.remove(NodeId(1), rule(2, 0, 1, 2)));
        let deltas = old.diff(&new);
        assert_eq!(deltas.len(), 1);
        assert!(deltas[0].add.is_empty());
        assert_eq!(deltas[0].remove, vec![rule(2, 0, 1, 2)]);
    }

    #[test]
    fn diff_tag_rewrite_change_is_remove_plus_add() {
        let mut old = RuleSet::new();
        old.add(NodeId(2), rule(1, 0, 1, 1)).unwrap();
        let mut new = RuleSet::new();
        new.add(NodeId(2), rule(1, 0, 1, 2)).unwrap(); // same match, new rewrite
        let deltas = old.diff(&new);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].remove, vec![rule(1, 0, 1, 1)]);
        assert_eq!(deltas[0].add, vec![rule(1, 0, 1, 2)]);
        assert_eq!(deltas[0].len(), 2);
    }

    #[test]
    fn applying_diff_reproduces_target() {
        let topo = ClosConfig::small().build();
        let healthy = Tagging::from_elp(&topo, &Elp::updown(&topo)).unwrap();
        let bouncy =
            Tagging::from_elp(&topo, &Elp::updown_with_bounces_capped(&topo, 1, 4)).unwrap();
        let mut replayed = healthy.rules().clone();
        for delta in healthy.rules().diff(bouncy.rules()) {
            replayed.apply_delta(&delta);
        }
        assert_eq!(&replayed, bouncy.rules());
        // And the reverse direction shrinks back exactly.
        for delta in bouncy.rules().diff(healthy.rules()) {
            replayed.apply_delta(&delta);
        }
        assert_eq!(&replayed, healthy.rules());
    }

    #[test]
    fn remove_requires_matching_rewrite() {
        let mut rs = RuleSet::new();
        rs.add(NodeId(1), rule(1, 0, 1, 2)).unwrap();
        assert!(!rs.remove(NodeId(1), rule(1, 0, 1, 9)));
        assert_eq!(rs.num_rules(), 1);
        assert!(!rs.remove(NodeId(9), rule(1, 0, 1, 2)));
        assert!(rs.remove(NodeId(1), rule(1, 0, 1, 2)));
        assert_eq!(rs, RuleSet::new());
    }

    #[test]
    fn table_text_round_trips() {
        let topo = ClosConfig::small().build();
        let t = crate::clos::clos_tagging(&topo, 2).unwrap();
        let text = t.rules().to_table_text(&topo);
        assert!(text.contains("switch L1"));
        let back = RuleSet::from_table_text(&topo, &text).unwrap();
        assert_eq!(&back, t.rules());
        // Iterator agrees with the per-switch view.
        assert_eq!(t.rules().iter().count(), t.rules().num_rules());
        for (sw, rule) in t.rules().iter() {
            assert_eq!(
                t.rules().decide(sw, rule.tag, rule.in_port, rule.out_port),
                TagDecision::Lossless(rule.new_tag)
            );
        }
    }

    #[test]
    fn table_text_rejects_malformed_lines() {
        let topo = ClosConfig::small().build();
        for (text, line, col) in [
            ("rule 1 T1 S1 1\n", 1, 1),
            ("switch NOPE\n", 1, 8),
            ("switch L1\nrule 1 NOPE S1 1\n", 2, 8),
            ("switch L1\nrule 1 T3 S1 1\n", 2, 8), // T3 not adjacent to L1
            ("switch L1\nrule x T1 S1 1\n", 2, 6),
            ("switch L1\njunk\n", 2, 1),
            ("switch L1\nrule 1 #99 S1 1\n", 2, 8), // port out of range
        ] {
            let err = RuleSet::from_table_text(&topo, text).unwrap_err();
            assert_eq!(err.span.line, line, "{text:?}: {err}");
            assert_eq!(err.span.col, col, "{text:?}: {err}");
        }
    }

    #[test]
    fn lenient_parse_collects_every_error_and_duplicate() {
        let topo = ClosConfig::small().build();
        let text = "\
switch L1
rule 1 T1 S1 1
rule 1 T1 S1 2
switch NOPE
rule 1 T1 S1 1
switch L2
rule x T1 S1 1
rule 1 T3 S1 1
";
        let parse = RuleSet::parse_table_text_lenient(&topo, text);
        // Both L1 lines parse (duplicate key preserved in file order);
        // the NOPE section swallows its rule; L2's two bad lines each
        // produce one error.
        assert_eq!(parse.rules.len(), 2);
        assert_eq!(parse.rules[0].span.line, 2);
        assert_eq!(parse.rules[1].span.line, 3);
        assert_eq!(parse.rules[0].rule.new_tag, Tag(1));
        assert_eq!(parse.rules[1].rule.new_tag, Tag(2));
        let lines: Vec<usize> = parse.errors.iter().map(|e| e.span.line).collect();
        assert_eq!(lines, vec![4, 7, 8]);
        // from_table_text on the duplicate-only prefix: last write wins.
        let rs =
            RuleSet::from_table_text(&topo, "switch L1\nrule 1 T1 S1 1\nrule 1 T1 S1 2\n").unwrap();
        let l1 = topo.expect_node("L1");
        let in_port = topo.port_towards(l1, topo.expect_node("T1")).unwrap();
        let out_port = topo.port_towards(l1, topo.expect_node("S1")).unwrap();
        assert_eq!(
            rs.decide(l1, Tag(1), in_port, out_port),
            TagDecision::Lossless(Tag(2))
        );
    }

    #[test]
    fn empty_ruleset_sends_everything_lossy() {
        let rs = RuleSet::new();
        assert_eq!(
            rs.decide(NodeId(0), Tag(1), PortId(0), PortId(1)),
            TagDecision::Lossy
        );
        assert_eq!(rs.num_rules(), 0);
        assert_eq!(rs.max_tag(), None);
    }
}
