//! Expected Lossless Paths (ELP): the operator's input to Tagger.

use tagger_routing::{all_paths_with_bounces, shortest_paths_all_pairs, updown_paths, Path};
use tagger_topo::{FailureSet, Topology};

/// The set of paths the operator requires to stay lossless (paper §4.1).
///
/// Any loop-free route may be included — loop-freedom is the only
/// requirement, and [`Path`] construction already enforces it. Common
/// recipes are provided as constructors; arbitrary path sets can be
/// assembled with [`Elp::from_paths`].
///
/// Packets that leave the ELP (failures, misconfigured routes, loops) are
/// demoted to the lossy class by the rule set's fallback entry; they are
/// *not* necessarily dropped — they merely stop triggering PFC.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Elp {
    paths: Vec<Path>,
}

impl Elp {
    /// Wraps an explicit path set.
    pub fn from_paths(paths: Vec<Path>) -> Self {
        Elp { paths }
    }

    /// All loop-free up-down paths between every host pair — the default
    /// ELP for a healthy Clos fabric.
    pub fn updown(topo: &Topology) -> Self {
        Elp {
            paths: updown_paths(topo, &FailureSet::none()),
        }
    }

    /// Up-down paths plus every path with at most `k` bounces: the ELP
    /// that keeps traffic lossless across up to `k` reroutes (paper §4.3).
    pub fn updown_with_bounces(topo: &Topology, k: usize) -> Self {
        Elp {
            paths: all_paths_with_bounces(topo, &FailureSet::none(), k, usize::MAX),
        }
    }

    /// Like [`Elp::updown_with_bounces`] with a per-pair enumeration cap,
    /// for larger fabrics.
    pub fn updown_with_bounces_capped(topo: &Topology, k: usize, cap_per_pair: usize) -> Self {
        Elp {
            paths: all_paths_with_bounces(topo, &FailureSet::none(), k, cap_per_pair),
        }
    }

    /// Up to `cap_per_pair` shortest paths between every ordered pair of
    /// hosts (`between_hosts`) or switches — the ELP used for Jellyfish
    /// fabrics in the paper's Table 5.
    pub fn shortest(topo: &Topology, cap_per_pair: usize, between_hosts: bool) -> Self {
        Elp {
            paths: shortest_paths_all_pairs(topo, &FailureSet::none(), cap_per_pair, between_hosts),
        }
    }

    /// The paths.
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// Number of paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Adds more paths (e.g. operator-chosen redundant routes).
    pub fn extend(&mut self, paths: impl IntoIterator<Item = Path>) {
        self.paths.extend(paths);
    }

    /// Longest path length in hops (`T` bound of paper §5.3), 0 if empty.
    pub fn max_hops(&self) -> usize {
        self.paths.iter().map(Path::hops).max().unwrap_or(0)
    }

    /// True if `path` is in the set.
    pub fn contains(&self, path: &Path) -> bool {
        self.paths.contains(path)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tagger_topo::ClosConfig;

    #[test]
    fn updown_elp_has_no_bounces() {
        let topo = ClosConfig::small().build();
        let elp = Elp::updown(&topo);
        assert!(!elp.is_empty());
        for p in elp.paths() {
            assert!(p.is_updown(&topo));
        }
    }

    #[test]
    fn bounce_elp_strictly_larger() {
        let topo = ClosConfig::small().build();
        let zero = Elp::updown(&topo);
        let one = Elp::updown_with_bounces(&topo, 1);
        assert!(one.len() > zero.len());
        for p in zero.paths() {
            assert!(one.contains(p));
        }
    }

    #[test]
    fn max_hops_on_small_clos() {
        let topo = ClosConfig::small().build();
        let elp = Elp::updown(&topo);
        // Longest loop-free up-down path: H-T-L-S-L-T-H has 6 hops and
        // within-pod spine detours have the same length.
        assert_eq!(elp.max_hops(), 6);
    }

    #[test]
    fn extend_appends() {
        let topo = ClosConfig::small().build();
        let mut elp = Elp::default();
        assert!(elp.is_empty());
        elp.extend(Elp::updown(&topo).paths().iter().take(3).cloned());
        assert_eq!(elp.len(), 3);
    }
}
