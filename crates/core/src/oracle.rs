//! The deadlock-freedom **existence oracle**: a decision procedure for
//! "does *any* deadlock-free tagging of this ELP set fit in a given
//! number of lossless priorities?" — independent of whether Algorithms
//! 1+2 happen to construct one.
//!
//! # The condition
//!
//! By Theorem 5.1 a tagging is deadlock-free iff every per-tag subgraph
//! of the tagged graph is acyclic and no hop decreases the tag. Because
//! tags are monotone along a path, a tagging with `b` tags is exactly a
//! partition of every path into at most `b` consecutive *segments*
//! (segment `t` carries tag `t`) such that, per layer `t`, the union of
//! intra-segment buffer-dependency edges — consecutive ingress-port
//! pairs — is acyclic. Hence:
//!
//! - an ELP set is feasible within **one** tag iff the union of all its
//!   dependency edges is acyclic (decided exactly by cycle detection);
//! - it is feasible within `b` tags iff such a `b`-layer partition
//!   exists. Since every path is loop-free, `tag_by_hop_count` always
//!   yields *some* finite tagging — infeasibility is therefore always
//!   relative to a **budget** (by default the eight 802.1Qbb lossless
//!   priority classes, [`HARDWARE_TAG_CEILING`]).
//!
//! A key structural fact makes the search complete and the pruning
//! sound: feasibility of completing the remaining suffixes in `b − t`
//! layers is **monotone in the frontier** (if a completion exists from
//! per-path progress `f`, it exists from any `f' ≥ f`: restrict the
//! completion's segments to the unplaced suffix — per-layer edge sets
//! only shrink). Consequently (a) every solution normalizes to one
//! where each unfinished path advances at least one hop per layer (the
//! first hop of a segment contributes no edge), and (b) a frontier that
//! failed at layer `t` dominates — and refutes — any lesser frontier.
//!
//! # Verdicts
//!
//! [`decide`] returns [`Verdict::Feasible`] with a proven
//! `lower_bound_tags`, the `tags_used` by the best found layering, and
//! a [`WitnessOrder`] — per-layer topological orders over ingress
//! ports, re-checkable in linear time by [`WitnessOrder::recheck`] —
//! or [`Verdict::Infeasible`] with a **minimal kernel**: a sub-ELP set
//! that is still infeasible but where dropping *any* single path flips
//! the verdict (shrunk greedily; feasibility is monotone under taking
//! subsets, so one greedy pass suffices), plus a dependency cycle from
//! the kernel's edge union to quote in diagnostics.
//!
//! On instances too large for the exhaustive layer search the oracle
//! stays deterministic and conservative: a `Feasible` answer is always
//! certified by its witness, while an `Infeasible` answer carries
//! `exhaustive = false` when the search was capped rather than
//! completed.

use crate::Elp;
use std::collections::BTreeMap;
use tagger_topo::{GlobalPort, Topology};

/// The 802.1Qbb hard ceiling: PFC distinguishes eight priority
/// classes, so no deployment can use more than eight lossless tags.
/// [`decide`] uses this as the budget when none is given.
pub const HARDWARE_TAG_CEILING: usize = 8;

/// Above this many total ELP hops the exhaustive layer search is
/// skipped and the oracle falls back to the greedy layering alone
/// (answers stay sound; `Infeasible` is then marked non-exhaustive).
const EXACT_SEARCH_HOP_LIMIT: usize = 200;

/// Cap on layer-search tree nodes before giving up conservatively.
const SEARCH_NODE_CAP: usize = 100_000;

/// The oracle's answer for one `(topology, ELP, budget)` instance.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// A deadlock-free tagging exists within the budget.
    Feasible(Feasible),
    /// No deadlock-free tagging fits in the budget (exactly, when
    /// `exhaustive`; conservatively otherwise).
    Infeasible(Infeasible),
}

impl Verdict {
    /// True for [`Verdict::Feasible`].
    pub fn is_feasible(&self) -> bool {
        matches!(self, Verdict::Feasible(_))
    }

    /// A one-line operator-facing summary of the verdict.
    pub fn summary(&self) -> String {
        match self {
            Verdict::Feasible(f) => format!(
                "feasible: a deadlock-free tagging exists within {} tag(s) (proven minimum >= {})",
                f.tags_used, f.lower_bound_tags
            ),
            Verdict::Infeasible(i) => format!(
                "infeasible within {} tag(s): minimal kernel of {} path(s), at least {} tag(s) required{}",
                i.budget,
                i.kernel.len(),
                i.lower_bound_tags,
                if i.exhaustive { "" } else { " (search capped; verdict conservative)" }
            ),
        }
    }
}

/// Existence certificate: a layering of every path into at most
/// `tags_used` monotone segments with per-layer acyclic dependencies.
#[derive(Clone, Debug)]
pub struct Feasible {
    /// Proven floor on the number of lossless tags any deadlock-free
    /// tagging of this ELP needs. Equals `tags_used` when the oracle
    /// settled the minimum exactly.
    pub lower_bound_tags: usize,
    /// Tags used by the witness layering (an upper bound on the
    /// minimum).
    pub tags_used: usize,
    /// The re-checkable certificate.
    pub witness: WitnessOrder,
}

/// Infeasibility counterexample.
#[derive(Clone, Debug)]
pub struct Infeasible {
    /// The budget the instance was decided against.
    pub budget: usize,
    /// Proven floor on the tags required (`budget + 1` when the search
    /// was exhaustive, else the best floor actually proven).
    pub lower_bound_tags: usize,
    /// Indices into `elp.paths()` of a minimal infeasible sub-ELP:
    /// dropping any single kernel path makes the rest feasible.
    /// Guaranteed minimal whenever `exhaustive` is true; a capped
    /// (conservative) verdict on a very large instance may skip the
    /// shrink and return a larger set.
    pub kernel: Vec<usize>,
    /// A buffer-dependency cycle in the kernel's edge union — the
    /// concrete structure to quote in diagnostics. Consecutive ports
    /// (wrapping) are each a dependency edge of some kernel path.
    pub cycle: Vec<GlobalPort>,
    /// True when the verdict is a completed proof; false when the
    /// layer search hit its cap and the answer is conservative.
    pub exhaustive: bool,
}

/// A feasibility certificate: per-layer topological orders over the
/// ingress ports plus the per-path, per-hop layer assignment.
///
/// Re-checkable in linear time, like `AuditCertificate`: monotone
/// layers along each path, and every same-layer hop pair strictly
/// forward in that layer's order — which certifies per-layer
/// acyclicity without re-running cycle detection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WitnessOrder {
    /// For each layer (tag − 1), a topological order of the ingress
    /// ports that layer uses.
    pub layers: Vec<Vec<GlobalPort>>,
    /// For each ELP path, the 1-based layer of each hop
    /// (non-decreasing along the path).
    pub assignment: Vec<Vec<u16>>,
}

impl WitnessOrder {
    /// Number of tags the witness uses.
    pub fn num_tags(&self) -> usize {
        self.layers.len()
    }

    /// Linear re-check of the certificate against `(topo, elp)`.
    ///
    /// Verifies shape (one layer value per hop), monotonicity, layer
    /// bounds, and that consecutive same-layer hops appear strictly
    /// forward in that layer's published order. Any topological-order
    /// violation would exhibit a cycle, so success certifies Theorem
    /// 5.1's conditions for the induced tagging.
    pub fn recheck(&self, topo: &Topology, elp: &Elp) -> Result<(), String> {
        if self.assignment.len() != elp.len() {
            return Err(format!(
                "witness covers {} paths, ELP has {}",
                self.assignment.len(),
                elp.len()
            ));
        }
        let positions: Vec<BTreeMap<GlobalPort, usize>> = self
            .layers
            .iter()
            .map(|l| l.iter().enumerate().map(|(i, &p)| (p, i)).collect())
            .collect();
        for (pi, path) in elp.paths().iter().enumerate() {
            let ports: Vec<GlobalPort> = path.ingress_ports(topo).collect();
            let layers = &self.assignment[pi];
            if layers.len() != ports.len() {
                return Err(format!(
                    "path {pi}: {} layer values for {} hops",
                    layers.len(),
                    ports.len()
                ));
            }
            for (h, &t) in layers.iter().enumerate() {
                if t == 0 || t as usize > self.layers.len() {
                    return Err(format!("path {pi} hop {h}: layer {t} out of range"));
                }
                let lp = &positions[t as usize - 1];
                if !lp.contains_key(&ports[h]) {
                    return Err(format!(
                        "path {pi} hop {h}: port missing from layer {t} order"
                    ));
                }
                if h > 0 {
                    let prev = layers[h - 1];
                    if t < prev {
                        return Err(format!("path {pi} hop {h}: layer decreases {prev} -> {t}"));
                    }
                    if t == prev {
                        let a = positions[t as usize - 1][&ports[h - 1]];
                        let b = positions[t as usize - 1][&ports[h]];
                        if a >= b {
                            return Err(format!(
                                "path {pi} hop {h}: not forward in layer {t} order ({a} >= {b})"
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Dense buffer-dependency view of an ELP: ingress ports interned to
/// `u32` ids, each path a sequence of ids. Edges are consecutive pairs.
struct Dep {
    ports: Vec<GlobalPort>,
    paths: Vec<Vec<u32>>,
}

impl Dep {
    fn build(topo: &Topology, elp: &Elp) -> Dep {
        let mut index: BTreeMap<GlobalPort, u32> = BTreeMap::new();
        let mut ports = Vec::new();
        let mut paths = Vec::with_capacity(elp.len());
        for p in elp.paths() {
            let mut ids = Vec::with_capacity(p.hops());
            for port in p.ingress_ports(topo) {
                let id = *index.entry(port).or_insert_with(|| {
                    ports.push(port);
                    (ports.len() - 1) as u32
                });
                ids.push(id);
            }
            paths.push(ids);
        }
        Dep { ports, paths }
    }

    fn restrict(&self, subset: &[usize]) -> Dep {
        Dep {
            ports: self.ports.clone(),
            paths: subset.iter().map(|&i| self.paths[i].clone()).collect(),
        }
    }

    fn total_hops(&self) -> usize {
        self.paths.iter().map(Vec::len).sum()
    }
}

/// A cycle in the union of all dependency edges of `dep`, if any —
/// the exact feasibility test for a single tag. Returned as dense port
/// ids in forward-edge order.
fn union_cycle(dep: &Dep) -> Option<Vec<u32>> {
    let n = dep.ports.len();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for path in &dep.paths {
        for w in path.windows(2) {
            adj[w[0] as usize].push(w[1]);
        }
    }
    for a in &mut adj {
        a.sort_unstable();
        a.dedup();
    }
    let mut color = vec![0u8; n]; // 0 white, 1 gray, 2 black
    let mut parent = vec![u32::MAX; n];
    for start in 0..n as u32 {
        if color[start as usize] != 0 {
            continue;
        }
        color[start as usize] = 1;
        let mut stack: Vec<(u32, usize)> = vec![(start, 0)];
        while let Some(frame) = stack.last_mut() {
            let u = frame.0;
            if frame.1 < adj[u as usize].len() {
                let v = adj[u as usize][frame.1];
                frame.1 += 1;
                match color[v as usize] {
                    0 => {
                        color[v as usize] = 1;
                        parent[v as usize] = u;
                        stack.push((v, 0));
                    }
                    1 => {
                        // Back edge u -> v: the cycle is v ->* u -> v.
                        let mut cyc = Vec::new();
                        let mut x = u;
                        loop {
                            cyc.push(x);
                            if x == v {
                                break;
                            }
                            x = parent[x as usize];
                        }
                        cyc.reverse();
                        return Some(cyc);
                    }
                    _ => {}
                }
            } else {
                color[u as usize] = 2;
                stack.pop();
            }
        }
    }
    None
}

/// One layer's incrementally-grown dependency graph with an epoch-
/// stamped reachability check (the acyclicity guard for edge inserts).
struct LayerGraph {
    adj: Vec<Vec<u32>>,
    visited: Vec<u32>,
    epoch: u32,
    scratch: Vec<u32>,
}

impl LayerGraph {
    fn new(n: usize) -> Self {
        LayerGraph {
            adj: vec![Vec::new(); n],
            visited: vec![0; n],
            epoch: 0,
            scratch: Vec::new(),
        }
    }

    fn clear(&mut self) {
        for a in &mut self.adj {
            a.clear();
        }
    }

    /// Is `target` reachable from `from`? (Adding edge `target -> from`
    /// would close a cycle exactly when this is true.)
    fn reaches(&mut self, from: u32, target: u32) -> bool {
        if from == target {
            return true;
        }
        self.epoch += 1;
        let LayerGraph {
            adj,
            visited,
            epoch,
            scratch,
        } = self;
        scratch.clear();
        scratch.push(from);
        visited[from as usize] = *epoch;
        while let Some(x) = scratch.pop() {
            for &y in &adj[x as usize] {
                if y == target {
                    return true;
                }
                if visited[y as usize] != *epoch {
                    visited[y as usize] = *epoch;
                    scratch.push(y);
                }
            }
        }
        false
    }

    fn add(&mut self, u: u32, v: u32) {
        self.adj[u as usize].push(v);
    }

    /// Removes the most recently added out-edge of `u` (edge inserts
    /// and removals are strictly LIFO per layer).
    fn pop_edge(&mut self, u: u32) {
        self.adj[u as usize].pop();
    }
}

/// Greedy layering: round-robin single-hop prefix extension per layer
/// with incremental acyclicity. Each unfinished path always places at
/// least the (edge-free) first hop of its layer segment, so this
/// terminates within `max_hops` layers and, with no budget, always
/// succeeds. With a budget, `Err(())` means "greedy needed more" — not
/// a proof of infeasibility.
fn peel(dep: &Dep, budget: Option<usize>) -> Result<Vec<Vec<u16>>, ()> {
    let n = dep.paths.len();
    let mut assign: Vec<Vec<u16>> = dep
        .paths
        .iter()
        .map(|p| Vec::with_capacity(p.len()))
        .collect();
    let mut f = vec![0usize; n];
    let mut g = LayerGraph::new(dep.ports.len());
    let mut present: std::collections::BTreeSet<(u32, u32)> = std::collections::BTreeSet::new();
    let mut t = 0usize;
    while (0..n).any(|p| f[p] < dep.paths[p].len()) {
        t += 1;
        if let Some(b) = budget {
            if t > b {
                return Err(());
            }
        }
        let seg_start = f.clone();
        g.clear();
        present.clear();
        loop {
            let mut progressed = false;
            for p in 0..n {
                let hops = &dep.paths[p];
                if f[p] >= hops.len() {
                    continue;
                }
                let place = if f[p] == seg_start[p] {
                    true
                } else {
                    let u = hops[f[p] - 1];
                    let v = hops[f[p]];
                    // Many paths share edges; an edge already in the
                    // layer costs nothing to traverse again.
                    if present.contains(&(u, v)) {
                        true
                    } else if g.reaches(v, u) {
                        false
                    } else {
                        g.add(u, v);
                        present.insert((u, v));
                        true
                    }
                };
                if place {
                    assign[p].push(t as u16);
                    f[p] += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
    }
    Ok(assign)
}

enum Res {
    Found,
    Fail,
    Capped,
}

/// Complete DFS over layerings within budget `b`, with frontier-
/// dominance pruning (sound and complete by the monotonicity lemma in
/// the module docs). Capped at [`SEARCH_NODE_CAP`] explored layers.
struct Search<'a> {
    dep: &'a Dep,
    b: usize,
    graphs: Vec<LayerGraph>,
    failed: Vec<Vec<Vec<usize>>>,
    nodes_left: usize,
    frontiers: Vec<Vec<usize>>,
}

enum SearchOutcome {
    Found(Vec<Vec<u16>>),
    Infeasible,
    Capped,
}

fn exact_search(dep: &Dep, b: usize) -> SearchOutcome {
    let mut s = Search {
        dep,
        b,
        graphs: (0..=b + 1)
            .map(|_| LayerGraph::new(dep.ports.len()))
            .collect(),
        failed: vec![Vec::new(); b + 2],
        nodes_left: SEARCH_NODE_CAP,
        frontiers: Vec::new(),
    };
    match s.layer(1, vec![0; dep.paths.len()]) {
        Res::Found => SearchOutcome::Found(assignment_from_frontiers(dep, &s.frontiers)),
        Res::Fail => SearchOutcome::Infeasible,
        Res::Capped => SearchOutcome::Capped,
    }
}

impl Search<'_> {
    fn layer(&mut self, t: usize, f: Vec<usize>) -> Res {
        if f.iter().zip(&self.dep.paths).all(|(&fi, p)| fi == p.len()) {
            return Res::Found;
        }
        if t > self.b {
            return Res::Fail;
        }
        if self.nodes_left == 0 {
            return Res::Capped;
        }
        self.nodes_left -= 1;
        if self.failed[t]
            .iter()
            .any(|d| d.iter().zip(&f).all(|(a, b)| a >= b))
        {
            return Res::Fail;
        }
        self.graphs[t].clear();
        let mut ends = f.clone();
        let res = self.extend(t, 0, &f, &mut ends);
        if matches!(res, Res::Fail) {
            self.failed[t].push(f);
        }
        res
    }

    fn extend(&mut self, t: usize, p: usize, f: &[usize], ends: &mut Vec<usize>) -> Res {
        let n = self.dep.paths.len();
        if p == n {
            let nf = ends.clone();
            self.frontiers.push(nf.clone());
            let res = self.layer(t + 1, nf);
            if !matches!(res, Res::Found) {
                self.frontiers.pop();
            }
            return res;
        }
        let hops_len = self.dep.paths[p].len();
        let start = f[p];
        if start >= hops_len {
            ends[p] = start;
            return self.extend(t, p + 1, f, ends);
        }
        // Greedy maximal reach for this path's layer-t segment; the
        // first hop is edge-free (it follows a layer transition).
        let mut e = start + 1;
        while e < hops_len {
            let u = self.dep.paths[p][e - 1];
            let v = self.dep.paths[p][e];
            if self.graphs[t].reaches(v, u) {
                break;
            }
            self.graphs[t].add(u, v);
            e += 1;
        }
        // Try segment ends longest-first (greedy bias), backtracking by
        // popping this path's own edges LIFO.
        loop {
            ends[p] = e;
            let res = self.extend(t, p + 1, f, ends);
            match res {
                Res::Fail => {}
                other => {
                    if matches!(other, Res::Capped) {
                        while e > start + 1 {
                            e -= 1;
                            self.graphs[t].pop_edge(self.dep.paths[p][e - 1]);
                        }
                    }
                    return other;
                }
            }
            if e == start + 1 {
                break;
            }
            e -= 1;
            self.graphs[t].pop_edge(self.dep.paths[p][e - 1]);
        }
        Res::Fail
    }
}

fn assignment_from_frontiers(dep: &Dep, frontiers: &[Vec<usize>]) -> Vec<Vec<u16>> {
    let n = dep.paths.len();
    let mut assign: Vec<Vec<u16>> = dep
        .paths
        .iter()
        .map(|p| Vec::with_capacity(p.len()))
        .collect();
    let mut prev = vec![0usize; n];
    for (ti, fr) in frontiers.iter().enumerate() {
        for p in 0..n {
            for _ in prev[p]..fr[p] {
                assign[p].push((ti + 1) as u16);
            }
        }
        prev.clone_from_slice(fr);
    }
    assign
}

enum Tri {
    Yes(Vec<Vec<u16>>),
    No,
    Unknown,
}

/// Decides feasibility of `dep` within `b` tags. `Yes` is always
/// certified by the returned assignment; `No` is a completed proof;
/// `Unknown` means the exhaustive search was skipped or capped.
fn feasible_within(dep: &Dep, b: usize, exact_ok: bool) -> Tri {
    if dep.total_hops() == 0 {
        return Tri::Yes(dep.paths.iter().map(|_| Vec::new()).collect());
    }
    if union_cycle(dep).is_none() {
        // Acyclic union: one tag suffices; the greedy peel realizes it.
        return match peel(dep, Some(1)) {
            Ok(a) => Tri::Yes(a),
            Err(()) => Tri::Unknown,
        };
    }
    if b <= 1 {
        return Tri::No;
    }
    if let Ok(a) = peel(dep, Some(b)) {
        return Tri::Yes(a);
    }
    if !exact_ok {
        return Tri::Unknown;
    }
    match exact_search(dep, b) {
        SearchOutcome::Found(a) => Tri::Yes(a),
        SearchOutcome::Infeasible => Tri::No,
        SearchOutcome::Capped => Tri::Unknown,
    }
}

/// Builds the per-layer topological orders for a valid assignment.
fn witness_from(dep: &Dep, assign: Vec<Vec<u16>>) -> WitnessOrder {
    let num_layers = assign.iter().flatten().copied().max().unwrap_or(0) as usize;
    let mut layers = Vec::with_capacity(num_layers);
    for t in 1..=num_layers as u16 {
        // Nodes of layer t and its (deduped) intra-segment edges.
        let mut in_layer = vec![false; dep.ports.len()];
        let mut adj: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        let mut indeg: BTreeMap<u32, usize> = BTreeMap::new();
        for (p, path) in dep.paths.iter().enumerate() {
            for (h, &port) in path.iter().enumerate() {
                if assign[p][h] == t {
                    in_layer[port as usize] = true;
                    indeg.entry(port).or_insert(0);
                    if h > 0 && assign[p][h - 1] == t {
                        adj.entry(path[h - 1]).or_default().push(port);
                    }
                }
            }
        }
        for targets in adj.values_mut() {
            targets.sort_unstable();
            targets.dedup();
        }
        for targets in adj.values() {
            for &v in targets {
                *indeg.entry(v).or_insert(0) += 1;
            }
        }
        // Deterministic Kahn: always pop the smallest ready id.
        let mut ready: std::collections::BTreeSet<u32> = indeg
            .iter()
            .filter(|&(_, &d)| d == 0)
            .map(|(&v, _)| v)
            .collect();
        let mut order = Vec::with_capacity(indeg.len());
        while let Some(&v) = ready.iter().next() {
            ready.remove(&v);
            order.push(dep.ports[v as usize]);
            if let Some(targets) = adj.get(&v) {
                for &w in targets {
                    if let Some(d) = indeg.get_mut(&w) {
                        *d -= 1;
                        if *d == 0 {
                            ready.insert(w);
                        }
                    }
                }
            }
        }
        debug_assert_eq!(order.len(), indeg.len(), "layer {t} had a residual cycle");
        layers.push(order);
    }
    WitnessOrder {
        layers,
        assignment: assign,
    }
}

/// Tightens a found layering toward the true minimum: climbs from the
/// proven floor (1 or 2 via the exact single-tag test), re-deciding at
/// each rung. Returns `(lower_bound, best_assignment)` with the
/// invariant `lower_bound ≤ layers(best)`, equal when settled exactly.
fn tighten(dep: &Dep, best: Vec<Vec<u16>>, exact_ok: bool) -> (usize, Vec<Vec<u16>>) {
    let used = best.iter().flatten().copied().max().unwrap_or(0) as usize;
    let mut lower = if union_cycle(dep).is_some() { 2 } else { 1 };
    if used == 0 {
        return (0, best);
    }
    let mut best = best;
    let mut used = used;
    let mut t = lower;
    while t < used {
        match feasible_within(dep, t, exact_ok) {
            Tri::Yes(a) => {
                best = a;
                used = t;
                break;
            }
            Tri::No => {
                lower = t + 1;
                t += 1;
            }
            Tri::Unknown => break,
        }
    }
    debug_assert!(lower <= used);
    (lower, best)
}

/// Layered upper-bound prover: on fabrics where every node on every
/// path carries a layer rank and no hop stays on its rank, the paper's
/// §4 construction — tag = bounces so far + 1, a new segment at every
/// down→up direction flip — is a valid layering (each segment is
/// up\*-then-down\*, and an ingress port's own rank delta orients it,
/// so a potential function orders every segment-union edge). Bails on
/// equal-rank links, where that orientation is ambiguous. Returns the
/// per-hop assignment when every path fits the budget; the caller
/// still re-checks it before trusting it.
fn layered_witness(topo: &Topology, elp: &Elp, b: usize) -> Option<Vec<Vec<u16>>> {
    let mut assign = Vec::with_capacity(elp.len());
    for path in elp.paths() {
        let nodes = path.nodes();
        let mut layers = Vec::with_capacity(nodes.len().saturating_sub(1));
        let mut t: u16 = 1;
        let mut prev_dir: i8 = 0;
        for w in nodes.windows(2) {
            let (ra, rb) = (topo.node(w[0]).layer.rank()?, topo.node(w[1]).layer.rank()?);
            let dir: i8 = match rb.cmp(&ra) {
                std::cmp::Ordering::Greater => 1,
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => return None,
            };
            if prev_dir == -1 && dir == 1 {
                t = t.checked_add(1)?;
            }
            prev_dir = dir;
            layers.push(t);
        }
        if t as usize > b {
            return None;
        }
        assign.push(layers);
    }
    Some(assign)
}

/// Generic upper-bound prover for instances where both the greedy peel
/// and the exhaustive search came up empty: run the Algorithm 1+2
/// pipeline and accept its tagging as a feasibility certificate when
/// it verifies and fits the budget. Hop `h` of every path carried
/// brute-force tag `h + 1` into its ingress port, so the merged tag of
/// that node is the hop's layer.
fn construction_witness(topo: &Topology, elp: &Elp, b: usize) -> Option<Vec<Vec<u16>>> {
    let brute = crate::tag_by_hop_count(topo, elp);
    let assignment = crate::greedy_assignment(topo, &brute);
    if crate::apply_assignment(&brute, &assignment)
        .verify()
        .is_err()
    {
        return None;
    }
    let mut assign = Vec::with_capacity(elp.len());
    for path in elp.paths() {
        let mut layers = Vec::with_capacity(path.hops());
        for (h, ingress) in path.ingress_ports(topo).enumerate() {
            let node = crate::TaggedNode {
                port: ingress,
                tag: crate::Tag((h + 1) as u16),
            };
            layers.push(assignment.get(&node)?.0);
        }
        assign.push(layers);
    }
    let used = assign.iter().flatten().copied().max().unwrap_or(0) as usize;
    (used <= b).then_some(assign)
}

/// Decides whether a deadlock-free tagging of `elp` on `topo` exists
/// within `budget` lossless tags (default [`HARDWARE_TAG_CEILING`];
/// budgets are clamped to at least 1). See the module docs for the
/// condition, witness and kernel semantics.
pub fn decide(topo: &Topology, elp: &Elp, budget: Option<usize>) -> Verdict {
    let dep = Dep::build(topo, elp);
    let b = budget.unwrap_or(HARDWARE_TAG_CEILING).max(1);
    let exact_ok = dep.total_hops() <= EXACT_SEARCH_HOP_LIMIT;
    let feasible = |assign: Vec<Vec<u16>>| {
        let (lower, best) = tighten(&dep, assign, exact_ok);
        let witness = witness_from(&dep, best);
        Verdict::Feasible(Feasible {
            lower_bound_tags: lower,
            tags_used: witness.num_tags(),
            witness,
        })
    };
    match feasible_within(&dep, b, exact_ok) {
        Tri::Yes(assign) => feasible(assign),
        Tri::No => infeasible_verdict(&dep, b, exact_ok, true),
        Tri::Unknown => {
            // The peel missed and the exact search was unavailable or
            // capped — try the two constructive upper-bound provers
            // before conceding. A layered candidate is only a
            // conjecture until its witness re-checks.
            let candidate = layered_witness(topo, elp, b)
                .filter(|a| witness_from(&dep, a.clone()).recheck(topo, elp).is_ok())
                .or_else(|| construction_witness(topo, elp, b));
            match candidate {
                Some(assign) => feasible(assign),
                None => infeasible_verdict(&dep, b, exact_ok, false),
            }
        }
    }
}

/// For each edge of `cycle`, one path that contributes it — a small
/// sub-ELP whose edge union still contains the whole cycle (hence is
/// still infeasible at one tag).
fn cycle_cover(dep: &Dep, cycle: &[u32]) -> Vec<usize> {
    let mut need: BTreeMap<(u32, u32), Option<usize>> = cycle
        .iter()
        .enumerate()
        .map(|(i, &u)| ((u, cycle[(i + 1) % cycle.len()]), None))
        .collect();
    for (pi, path) in dep.paths.iter().enumerate() {
        for w in path.windows(2) {
            if let Some(slot) = need.get_mut(&(w[0], w[1])) {
                if slot.is_none() {
                    *slot = Some(pi);
                }
            }
        }
    }
    let set: std::collections::BTreeSet<usize> = need.values().filter_map(|v| *v).collect();
    set.into_iter().collect()
}

fn infeasible_verdict(dep: &Dep, b: usize, exact_ok: bool, exhaustive: bool) -> Verdict {
    let n = dep.paths.len();
    let mut alive: Vec<usize> = (0..n).filter(|&i| !dep.paths[i].is_empty()).collect();
    // Pre-reduce: a cover of one dependency cycle (one path per cycle
    // edge) is a small sub-ELP that is certainly infeasible at one tag;
    // when it is also infeasible at `b`, shrink that instead of the
    // full set — this keeps the shrink cheap on huge ELPs.
    if let Some(cyc) = union_cycle(dep) {
        let cover = cycle_cover(dep, &cyc);
        if cover.len() < alive.len()
            && (b == 1
                || !matches!(
                    feasible_within(&dep.restrict(&cover), b, exact_ok),
                    Tri::Yes(_)
                ))
        {
            alive = cover;
        }
    }
    // Greedy kernel shrink: drop each path in turn, keeping the drop
    // whenever the remainder is still not provably feasible. Because
    // feasibility is monotone under subsets, every path that survives
    // was tested against a superset of the final kernel, so dropping
    // it from the kernel is feasible too — one pass yields minimality.
    let candidates = alive.clone();
    if b == 1 || exact_ok || candidates.len() <= 64 {
        for i in candidates {
            if alive.len() <= 1 {
                break;
            }
            if !alive.contains(&i) {
                continue;
            }
            let trial: Vec<usize> = alive.iter().copied().filter(|&j| j != i).collect();
            if !matches!(
                feasible_within(&dep.restrict(&trial), b, exact_ok),
                Tri::Yes(_)
            ) {
                alive = trial;
            }
        }
    }
    let sub = dep.restrict(&alive);
    let cycle = union_cycle(&sub)
        .unwrap_or_default()
        .into_iter()
        .map(|id| sub.ports[id as usize])
        .collect();
    Verdict::Infeasible(Infeasible {
        budget: b,
        lower_bound_tags: if exhaustive { b + 1 } else { 2 },
        kernel: alive,
        cycle,
        exhaustive,
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use tagger_routing::Path;
    use tagger_topo::{ClosConfig, Layer};

    fn clos() -> Topology {
        ClosConfig::small().build()
    }

    /// The paper's Fig. 10 pair: two counter-rotating one-bounce paths
    /// whose shared ingress ports (S1<-L1, S2<-L3) close a dependency
    /// cycle, so one tag can never suffice.
    fn fig10_elp(t: &Topology) -> Elp {
        Elp::from_paths(vec![
            Path::from_names(t, &["H1", "T1", "L1", "S1", "L3", "S2", "L4", "T4", "H13"]),
            Path::from_names(t, &["H9", "T3", "L3", "S2", "L1", "S1", "L2", "T1", "H1"]),
        ])
    }

    /// An N-switch ring (flat switches, one host each): the clockwise
    /// 2-arc host paths force a dependency cycle at one tag.
    fn ring(n: usize) -> (Topology, Elp) {
        let mut t = Topology::new();
        let switches: Vec<_> = (1..=n)
            .map(|i| t.add_switch(format!("R{i}"), Layer::Flat))
            .collect();
        let hosts: Vec<_> = (1..=n).map(|i| t.add_host(format!("H{i}"))).collect();
        for i in 0..n {
            t.connect(switches[i], switches[(i + 1) % n]);
            t.connect(hosts[i], switches[i]);
        }
        let paths = (0..n)
            .map(|i| {
                Path::new(
                    &t,
                    vec![
                        hosts[i],
                        switches[i],
                        switches[(i + 1) % n],
                        switches[(i + 2) % n],
                        hosts[(i + 2) % n],
                    ],
                )
                .unwrap()
            })
            .collect();
        (t, Elp::from_paths(paths))
    }

    #[test]
    fn empty_elp_needs_no_tags() {
        let t = clos();
        match decide(&t, &Elp::from_paths(Vec::new()), None) {
            Verdict::Feasible(f) => {
                assert_eq!(f.lower_bound_tags, 0);
                assert_eq!(f.tags_used, 0);
                f.witness.recheck(&t, &Elp::from_paths(Vec::new())).unwrap();
            }
            v => panic!("expected feasible, got {}", v.summary()),
        }
    }

    #[test]
    fn updown_elp_needs_exactly_one_tag() {
        let t = clos();
        let elp = Elp::updown(&t);
        match decide(&t, &elp, None) {
            Verdict::Feasible(f) => {
                assert_eq!(f.lower_bound_tags, 1);
                assert_eq!(f.tags_used, 1);
                f.witness.recheck(&t, &elp).unwrap();
            }
            v => panic!("expected feasible, got {}", v.summary()),
        }
    }

    #[test]
    fn one_bounce_elp_needs_exactly_two_tags() {
        let t = clos();
        let elp = fig10_elp(&t);
        match decide(&t, &elp, None) {
            Verdict::Feasible(f) => {
                assert_eq!(f.lower_bound_tags, 2, "bounce paths force >= 2 tags");
                assert_eq!(f.tags_used, 2);
                f.witness.recheck(&t, &elp).unwrap();
            }
            v => panic!("expected feasible, got {}", v.summary()),
        }
    }

    #[test]
    fn one_bounce_elp_is_infeasible_at_budget_one_with_minimal_kernel() {
        let t = clos();
        let elp = fig10_elp(&t);
        let i = match decide(&t, &elp, Some(1)) {
            Verdict::Infeasible(i) => i,
            v => panic!("expected infeasible, got {}", v.summary()),
        };
        assert!(i.exhaustive);
        assert_eq!(i.lower_bound_tags, 2);
        assert!(!i.cycle.is_empty());
        assert!(i.kernel.len() >= 2);
        // Minimality: dropping any kernel path flips the verdict.
        for drop in 0..i.kernel.len() {
            let sub: Vec<Path> = i
                .kernel
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != drop)
                .map(|(_, &pi)| elp.paths()[pi].clone())
                .collect();
            assert!(
                decide(&t, &Elp::from_paths(sub), Some(1)).is_feasible(),
                "kernel not minimal: still infeasible without path {drop}"
            );
        }
        // But the kernel itself is infeasible.
        let kernel_paths: Vec<Path> = i.kernel.iter().map(|&pi| elp.paths()[pi].clone()).collect();
        assert!(!decide(&t, &Elp::from_paths(kernel_paths), Some(1)).is_feasible());
    }

    #[test]
    fn ring_is_infeasible_at_one_tag_and_feasible_at_two() {
        let (t, elp) = ring(5);
        let i = match decide(&t, &elp, Some(1)) {
            Verdict::Infeasible(i) => i,
            v => panic!("expected infeasible, got {}", v.summary()),
        };
        assert!(i.exhaustive);
        assert!(!i.cycle.is_empty());
        for drop in 0..i.kernel.len() {
            let sub: Vec<Path> = i
                .kernel
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != drop)
                .map(|(_, &pi)| elp.paths()[pi].clone())
                .collect();
            assert!(decide(&t, &Elp::from_paths(sub), Some(1)).is_feasible());
        }
        match decide(&t, &elp, Some(2)) {
            Verdict::Feasible(f) => {
                assert_eq!(f.lower_bound_tags, 2);
                f.witness.recheck(&t, &elp).unwrap();
            }
            v => panic!("expected feasible at 2, got {}", v.summary()),
        }
    }

    #[test]
    fn recheck_rejects_tampered_witness() {
        let t = clos();
        let elp = fig10_elp(&t);
        let mut f = match decide(&t, &elp, None) {
            Verdict::Feasible(f) => f,
            v => panic!("expected feasible, got {}", v.summary()),
        };
        // Find a path with a layer-2 hop and illegally lower it.
        let (pi, hi) = f
            .witness
            .assignment
            .iter()
            .enumerate()
            .find_map(|(pi, a)| a.iter().position(|&l| l == 2).map(|hi| (pi, hi)))
            .expect("a two-tag witness has a layer-2 hop");
        f.witness.assignment[pi][hi] = 1;
        assert!(f.witness.recheck(&t, &elp).is_err());
    }

    #[test]
    fn verdict_agrees_with_construction_on_clos() {
        let t = clos();
        let elp = Elp::updown_with_bounces_capped(&t, 1, 2);
        let constructed = crate::minimize_elp(&t, &elp);
        constructed.verify().unwrap();
        let m = constructed.num_lossless_tags(&t);
        // The oracle must find the instance feasible within what the
        // construction used, and its floor can never exceed it.
        match decide(&t, &elp, Some(m)) {
            Verdict::Feasible(f) => {
                assert!(f.lower_bound_tags <= m);
                assert!(f.tags_used <= m);
                f.witness.recheck(&t, &elp).unwrap();
            }
            v => panic!("construction used {m} tags but oracle says {}", v.summary()),
        }
    }
}
