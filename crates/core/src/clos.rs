//! The Clos-specific optimal tagging construction (paper §4).
//!
//! For a Clos/FatTree fabric and an ELP of "all paths with up to `k`
//! bounces", the optimal scheme needs exactly `k + 1` lossless priorities
//! (paper §4.4, proved optimal by pigeonhole): the tag simply counts
//! bounces. Every ToR and Leaf switch bumps the tag when a packet that
//! came *down* to it turns back *up* — detectable purely locally as
//! (ingress port faces an upper layer) ∧ (egress port faces an upper
//! layer). Spines never bump. Packets whose tag would exceed `k + 1` match
//! no rule and fall to the lossy class.
//!
//! The tagged graph built here is a *superset* of what the ELP reaches: it
//! contains every `(port, tag)` combination the rules could ever produce,
//! under any routing whatsoever. Verifying this superset certifies that
//! the scheme is deadlock-free even under routing errors and loops — the
//! paper's headline guarantee.

use crate::{RuleError, RuleSet, SwitchRule, Tag, TaggedGraph, TaggedNode, Tagging};
use tagger_topo::{GlobalPort, NodeId, NodeKind, Topology};

/// Errors from the Clos construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClosError {
    /// A switch has no layer rank (e.g. [`tagger_topo::Layer::Flat`]):
    /// the up/down structure the construction relies on is missing.
    UnrankedSwitch(NodeId),
    /// Rule compilation or verification failed (bug if it ever fires).
    Rule(RuleError),
}

impl std::fmt::Display for ClosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClosError::UnrankedSwitch(n) => {
                write!(f, "switch {n} has no layer rank; not a Clos-like fabric")
            }
            ClosError::Rule(e) => write!(f, "rule error: {e}"),
        }
    }
}

impl std::error::Error for ClosError {}

/// Builds the optimal Clos tagging for ELPs with up to `k` bounces:
/// `k + 1` lossless tags, bump-on-bounce rules, lossy beyond.
///
/// Works on any layered fabric where every switch carries a layer rank
/// (3-layer Clos, 2-layer leaf-spine, FatTree).
pub fn clos_tagging(topo: &Topology, k: usize) -> Result<Tagging, ClosError> {
    let max_tag = (k + 1) as u16;
    // Sanity: every switch must be ranked.
    for sw in topo.switch_ids() {
        if topo.node(sw).layer.rank().is_none() {
            return Err(ClosError::UnrankedSwitch(sw));
        }
    }

    let mut rules = RuleSet::new();
    let mut graph = TaggedGraph::new();

    for sw in topo.switch_ids() {
        let rank = topo.node(sw).layer.rank().expect("checked above");
        let neighbors: Vec<(tagger_topo::PortId, NodeId)> = topo
            .neighbors(sw)
            .map(|(port, _, peer)| (port, peer))
            .collect();
        for &(in_port, in_peer) in &neighbors {
            let in_upper = topo.node(in_peer).layer.rank().is_some_and(|r| r > rank);
            for &(out_port, out_peer) in &neighbors {
                if in_port == out_port {
                    continue;
                }
                let out_upper = topo.node(out_peer).layer.rank().is_some_and(|r| r > rank);
                let bounce = in_upper && out_upper;
                for tag in 1..=max_tag {
                    let new_tag = if bounce { tag + 1 } else { tag };
                    if new_tag > max_tag {
                        continue; // falls through to the lossy safeguard
                    }
                    // Packets from hosts only ever carry the initial tag;
                    // rules and graph nodes for higher tags there would be
                    // dead weight.
                    if topo.node(in_peer).kind == NodeKind::Host && tag != Tag::INITIAL.0 {
                        continue;
                    }
                    rules
                        .add(
                            sw,
                            SwitchRule {
                                tag: Tag(tag),
                                in_port,
                                out_port,
                                new_tag: Tag(new_tag),
                            },
                        )
                        .map_err(ClosError::Rule)?;
                    // Graph edge: (sw ingress, tag) -> (peer ingress, new).
                    let to_port = topo
                        .peer_of(GlobalPort::new(sw, out_port))
                        .expect("wired port");
                    graph.add_edge(
                        TaggedNode {
                            port: GlobalPort::new(sw, in_port),
                            tag: Tag(tag),
                        },
                        TaggedNode {
                            port: to_port,
                            tag: Tag(new_tag),
                        },
                    );
                }
            }
        }
    }

    Tagging::new(graph, rules).map_err(ClosError::Rule)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::{Elp, TagDecision};
    use tagger_topo::{fat_tree, ClosConfig};

    #[test]
    fn k_plus_one_tags() {
        let topo = ClosConfig::small().build();
        for k in 0..4usize {
            let t = clos_tagging(&topo, k).unwrap();
            assert_eq!(t.num_lossless_tags_on(&topo), k + 1, "k={k}");
        }
    }

    #[test]
    fn graph_is_deadlock_free_by_construction() {
        let topo = ClosConfig::small().build();
        for k in 0..3usize {
            clos_tagging(&topo, k).unwrap().graph().verify().unwrap();
        }
    }

    #[test]
    fn updown_elp_lossless_with_k0() {
        let topo = ClosConfig::small().build();
        let t = clos_tagging(&topo, 0).unwrap();
        t.check_elp_lossless(&topo, &Elp::updown(&topo)).unwrap();
    }

    #[test]
    fn one_bounce_elp_lossless_with_k1_not_k0() {
        let topo = ClosConfig::small().build();
        let elp = Elp::updown_with_bounces_capped(&topo, 1, 16);
        clos_tagging(&topo, 1)
            .unwrap()
            .check_elp_lossless(&topo, &elp)
            .unwrap();
        assert!(clos_tagging(&topo, 0)
            .unwrap()
            .check_elp_lossless(&topo, &elp)
            .is_err());
    }

    #[test]
    fn two_bounce_elp_needs_k2() {
        let topo = ClosConfig::small().build();
        let elp = Elp::updown_with_bounces_capped(&topo, 2, 8);
        clos_tagging(&topo, 2)
            .unwrap()
            .check_elp_lossless(&topo, &elp)
            .unwrap();
        assert!(clos_tagging(&topo, 1)
            .unwrap()
            .check_elp_lossless(&topo, &elp)
            .is_err());
    }

    #[test]
    fn bounce_rule_bumps_tag() {
        let topo = ClosConfig::small().build();
        let t = clos_tagging(&topo, 1).unwrap();
        let l1 = topo.expect_node("L1");
        let s1 = topo.expect_node("S1");
        let s2 = topo.expect_node("S2");
        let in_port = topo.port_towards(l1, s1).unwrap();
        let out_port = topo.port_towards(l1, s2).unwrap();
        // Bounce at L1 (spine -> spine): tag 1 -> 2; tag 2 -> lossy.
        assert_eq!(
            t.rules().decide(l1, Tag(1), in_port, out_port),
            TagDecision::Lossless(Tag(2))
        );
        assert_eq!(
            t.rules().decide(l1, Tag(2), in_port, out_port),
            TagDecision::Lossy
        );
    }

    #[test]
    fn non_bounce_keeps_tag() {
        let topo = ClosConfig::small().build();
        let t = clos_tagging(&topo, 1).unwrap();
        let l1 = topo.expect_node("L1");
        let in_port = topo.port_towards(l1, topo.expect_node("T1")).unwrap();
        let out_port = topo.port_towards(l1, topo.expect_node("S1")).unwrap();
        // Going up through L1 keeps whatever tag the packet has.
        for tag in 1..=2u16 {
            assert_eq!(
                t.rules().decide(l1, Tag(tag), in_port, out_port),
                TagDecision::Lossless(Tag(tag))
            );
        }
    }

    #[test]
    fn works_on_two_layer_leaf_spine() {
        let topo = tagger_topo::clos2(4, 2, 2);
        let t = clos_tagging(&topo, 1).unwrap();
        t.graph().verify().unwrap();
        assert_eq!(t.num_lossless_tags_on(&topo), 2);
        t.check_elp_lossless(&topo, &Elp::updown(&topo)).unwrap();
    }

    #[test]
    fn works_on_fat_tree() {
        let topo = fat_tree(4);
        let t = clos_tagging(&topo, 1).unwrap();
        assert_eq!(t.num_lossless_tags_on(&topo), 2);
        t.graph().verify().unwrap();
        let elp = Elp::updown(&topo);
        t.check_elp_lossless(&topo, &elp).unwrap();
    }

    #[test]
    fn flat_topology_is_rejected() {
        let topo = tagger_topo::JellyfishConfig::half_servers(10, 6, 1).build();
        assert!(matches!(
            clos_tagging(&topo, 1),
            Err(ClosError::UnrankedSwitch(_))
        ));
    }

    #[test]
    fn loop_traffic_eventually_goes_lossy() {
        // A packet looping T1 <-> L1 bounces at T1 every round trip: after
        // k bounces its tag exceeds k+1 and it matches no rule.
        let topo = ClosConfig::small().build();
        let k = 2;
        let t = clos_tagging(&topo, k).unwrap();
        let t1 = topo.expect_node("T1");
        let l1 = topo.expect_node("L1");
        let t1_from_l1 = topo.port_towards(t1, l1).unwrap();
        let t1_to_l1 = t1_from_l1; // same port both ways is impossible...
                                   // T1 has exactly one port to L1; a loop T1->L1->T1->L1 would
                                   // re-use it, which real forwarding forbids. Use the two-leaf loop
                                   // instead: L1 -> T1 -> L2 -> T1? Also forbidden. The realistic
                                   // loop (Fig 11) is T1 -> L1 -> T1 via distinct FIB entries but the
                                   // same physical link — model it as repeated bounces at T1 between
                                   // its two uplinks: in from L1, out to L2 (bounce), in from L2,
                                   // out to L1 (bounce), ...
        let t1_from_l2 = topo.port_towards(t1, topo.expect_node("L2")).unwrap();
        let mut tag = Tag::INITIAL;
        let mut demoted_at = None;
        for round in 0..10 {
            let (in_p, out_p) = if round % 2 == 0 {
                (t1_from_l1, t1_from_l2)
            } else {
                (t1_from_l2, t1_from_l1)
            };
            match t.rules().decide(t1, tag, in_p, out_p) {
                TagDecision::Lossless(next) => tag = next,
                TagDecision::Lossy => {
                    demoted_at = Some(round);
                    break;
                }
            }
        }
        let _ = t1_to_l1;
        // k = 2: tags 1 -> 2 -> 3 on two bounces, third bounce demotes.
        assert_eq!(demoted_at, Some(2));
    }
}
