//! Property tests for the tagging core: the verifier, the algorithms and
//! the TCAM compiler over randomized inputs.

use proptest::prelude::*;
use tagger_core::tcam::{Compression, Tcam};
use tagger_core::{
    greedy_minimize, tag_by_hop_count, Elp, SwitchRule, Tag, TaggedGraph, TaggedNode,
};
use tagger_topo::{ClosConfig, GlobalPort, JellyfishConfig, NodeId, PortId};

fn tn(node: u32, port: u16, tag: u16) -> TaggedNode {
    TaggedNode {
        port: GlobalPort::new(NodeId(node), PortId(port)),
        tag: Tag(tag),
    }
}

/// Random edges over a small node/port/tag space.
fn arb_graph() -> impl Strategy<Value = TaggedGraph> {
    proptest::collection::vec(
        ((0u32..6, 0u16..3, 1u16..4), (0u32..6, 0u16..3, 1u16..4)),
        0..40,
    )
    .prop_map(|edges| {
        let mut g = TaggedGraph::new();
        for ((an, ap, at), (bn, bp, bt)) in edges {
            g.add_edge(tn(an, ap, at), tn(bn, bp, bt));
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The verifier's two checks are exactly Theorem 5.1: accept iff
    /// monotone and per-tag acyclic. Cross-check the cycle finder against
    /// a brute-force reachability argument.
    #[test]
    fn verifier_cycle_witness_is_sound(g in arb_graph()) {
        for tag in g.tags() {
            if let Some(cycle) = g.find_cycle_in_tag(tag) {
                // Witness closes and every step is an edge within the tag.
                prop_assert_eq!(cycle.first(), cycle.last());
                prop_assert!(cycle.len() >= 2);
                for w in cycle.windows(2) {
                    prop_assert!(g.contains_edge(&(w[0], w[1])));
                    prop_assert_eq!(w[0].tag, tag);
                }
            }
        }
    }

    /// verify() rejects exactly when there is a decreasing edge or some
    /// tag has a cycle.
    #[test]
    fn verify_matches_definitions(g in arb_graph()) {
        let decreasing = g.edges().any(|(a, b)| b.tag < a.tag);
        let cyclic = g.tags().iter().any(|&t| g.find_cycle_in_tag(t).is_some());
        prop_assert_eq!(g.verify().is_ok(), !decreasing && !cyclic);
    }

    /// Tag shifting preserves verification results and structure.
    #[test]
    fn shifted_preserves_verdict(g in arb_graph(), off in 0u16..5) {
        let s = g.shifted(off);
        prop_assert_eq!(g.verify().is_ok(), s.verify().is_ok());
        prop_assert_eq!(g.num_nodes(), s.num_nodes());
        prop_assert_eq!(g.num_edges(), s.num_edges());
    }

    /// Algorithm 1 + Algorithm 2 over random Clos ELPs: outputs verify,
    /// tags shrink, node/edge counts are preserved up to merging.
    #[test]
    fn algorithms_invariants(seed in 0u64..500) {
        let topo = ClosConfig::small().build();
        let hosts: Vec<_> = topo.host_ids().collect();
        let a = hosts[(seed as usize) % hosts.len()];
        let b = hosts[(seed as usize * 3 + 1) % hosts.len()];
        prop_assume!(a != b);
        let paths = tagger_routing::bounce_paths_between_capped(
            &topo,
            &tagger_topo::FailureSet::none(),
            a,
            b,
            (seed % 2) as usize,
            12,
        );
        prop_assume!(!paths.is_empty());
        let elp = Elp::from_paths(paths);
        let brute = tag_by_hop_count(&topo, &elp);
        prop_assert_eq!(brute.verify(), Ok(()));
        let merged = greedy_minimize(&topo, &brute);
        prop_assert_eq!(merged.verify(), Ok(()));
        prop_assert!(merged.num_nodes() <= brute.num_nodes());
        prop_assert!(merged.num_edges() <= brute.num_edges());
        prop_assert!(
            merged.num_lossless_tags(&topo) <= brute.num_lossless_tags(&topo)
        );
    }

    /// TCAM compilation is semantically equivalent to the rule list at
    /// every compression level, over random rule tables.
    #[test]
    fn tcam_equivalence(rules in proptest::collection::vec(
        (1u16..4, 0u16..6, 0u16..6, 1u16..4),
        0..30,
    )) {
        // Deduplicate by key, as a RuleSet would.
        let mut seen = std::collections::BTreeMap::new();
        for (t, i, o, n) in rules {
            seen.entry((t, i, o)).or_insert(n);
        }
        let rules: Vec<SwitchRule> = seen
            .into_iter()
            .map(|((t, i, o), n)| SwitchRule {
                tag: Tag(t),
                in_port: PortId(i),
                out_port: PortId(o),
                new_tag: Tag(n),
            })
            .collect();
        let exact = Tcam::compile(&rules, Compression::None);
        for level in [Compression::InPort, Compression::Joint] {
            let compressed = Tcam::compile(&rules, level);
            prop_assert!(compressed.len() <= exact.len());
            for t in 1..4u16 {
                for i in 0..6u16 {
                    for o in 0..6u16 {
                        prop_assert_eq!(
                            compressed.decide(Tag(t), PortId(i), PortId(o)),
                            exact.decide(Tag(t), PortId(i), PortId(o)),
                            "mismatch at ({},{},{}) level {:?}", t, i, o, level
                        );
                    }
                }
            }
        }
    }

    /// The closure certificate of a pipeline run always verifies and the
    /// pipeline never silently falls back on shortest-path Jellyfish
    /// ELPs.
    #[test]
    fn pipeline_certificates(seed in 0u64..40) {
        let topo = JellyfishConfig::half_servers(12, 6, seed).build();
        let elp = Elp::shortest(&topo, 1, false);
        prop_assume!(!elp.is_empty());
        let t = tagger_core::Tagging::from_elp(&topo, &elp).unwrap();
        prop_assert_eq!(t.graph().verify(), Ok(()));
        prop_assert!(!t.used_fallback());
    }
}
