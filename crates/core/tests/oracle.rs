//! Property tests tying the existence oracle to the Algorithm 1+2
//! construction it gatekeeps: whatever the construction achieves, the
//! oracle must certify (feasible within the construction's tag count,
//! with a witness that rechecks), and whenever the oracle proves
//! infeasibility exhaustively, the construction must indeed have needed
//! more tags. Kernel minimality is checked on seeded infeasible rings.

use proptest::prelude::*;
use proptest::TestCaseError;
use tagger_core::{decide, minimize_elp, Elp, Verdict};
use tagger_routing::Path;
use tagger_topo::{ClosConfig, JellyfishConfig, Layer, Topology};

/// Tags the construction uses on `elp` (contiguous from 1, so the max
/// is the count), or `None` if the pipeline's certificate fails.
fn construction_tags(topo: &Topology, elp: &Elp) -> Option<usize> {
    let g = minimize_elp(topo, elp);
    g.verify().ok()?;
    Some(g.max_tag().map_or(0, |t| t.0 as usize))
}

/// Oracle ⟺ construction on one fabric/ELP pair: the shared body of
/// the Clos and Jellyfish properties below.
fn check_equivalence(topo: &Topology, elp: &Elp) -> Result<(), TestCaseError> {
    let Some(m) = construction_tags(topo, elp) else {
        // The pipeline failing to certify proves nothing either way.
        return Ok(());
    };
    // Construction succeeds within m ⟹ oracle must agree m is enough.
    match decide(topo, elp, Some(m.max(1))) {
        Verdict::Feasible(f) => {
            prop_assert!(f.lower_bound_tags <= f.tags_used);
            prop_assert!(
                f.tags_used <= m.max(1),
                "witness uses {} tags, construction managed {m}",
                f.tags_used
            );
            prop_assert_eq!(f.witness.num_tags(), f.tags_used);
            if let Err(e) = f.witness.recheck(topo, elp) {
                return Err(TestCaseError::Fail(format!("witness recheck: {e}")));
            }
            // The floor is real: the oracle must also certify at its
            // own claimed minimum.
            match decide(topo, elp, Some(f.lower_bound_tags.max(1))) {
                Verdict::Feasible(g) => {
                    if let Err(e) = g.witness.recheck(topo, elp) {
                        return Err(TestCaseError::Fail(format!("floor recheck: {e}")));
                    }
                }
                Verdict::Infeasible(i) => {
                    // A conservative verdict at the floor is allowed
                    // only when the oracle could not settle it exactly.
                    prop_assert!(
                        !i.exhaustive,
                        "floor {} claimed feasible but exhaustively refuted",
                        f.lower_bound_tags
                    );
                }
            }
        }
        Verdict::Infeasible(i) => {
            return Err(TestCaseError::Fail(format!(
                "construction fits in {m} tag(s) but oracle says: {}",
                Verdict::Infeasible(i).summary()
            )));
        }
    }
    // Exhaustive infeasibility below m ⟹ the construction really
    // cannot have fit (it used exactly m > b).
    if m >= 2 {
        let b = m - 1;
        if let Verdict::Infeasible(i) = decide(topo, elp, Some(b)) {
            if i.exhaustive {
                prop_assert!(
                    m > b,
                    "oracle exhaustively refutes {b} tag(s) yet construction used {m}"
                );
                prop_assert!(!i.kernel.is_empty());
            }
        }
    }
    Ok(())
}

/// A flat n-switch ring with one two-hop path per ring edge —
/// infeasible at one tag, and every path is load-bearing.
fn ring(n: usize) -> (Topology, Elp) {
    let mut t = Topology::new();
    let switches: Vec<_> = (1..=n)
        .map(|i| t.add_switch(format!("R{i}"), Layer::Flat))
        .collect();
    let hosts: Vec<_> = (1..=n).map(|i| t.add_host(format!("H{i}"))).collect();
    for i in 0..n {
        t.connect(switches[i], switches[(i + 1) % n]);
        t.connect(hosts[i], switches[i]);
    }
    let paths = (0..n)
        .map(|i| {
            Path::new(
                &t,
                vec![
                    hosts[i],
                    switches[i],
                    switches[(i + 1) % n],
                    switches[(i + 2) % n],
                    hosts[(i + 2) % n],
                ],
            )
            .expect("ring path")
        })
        .collect();
    (t, Elp::from_paths(paths))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Clos fabrics of random dimensions with bounce ELPs: the oracle
    /// and the layered/greedy constructions must tell the same story.
    #[test]
    fn oracle_agrees_with_construction_on_clos(
        dims in (1usize..3, 1usize..3, 1usize..3, 1usize..4),
        k in 0usize..2,
    ) {
        let (pods, leaves, tors, spines) = dims;
        let topo = ClosConfig {
            pods,
            leaves_per_pod: leaves,
            tors_per_pod: tors,
            spines,
            hosts_per_tor: 2,
        }
        .build();
        let elp = Elp::updown_with_bounces_capped(&topo, k, 4);
        check_equivalence(&topo, &elp)?;
    }

    /// Random regular graphs (Jellyfish) with shortest-path ELPs — the
    /// unlayered case, where only the generic pipeline applies.
    #[test]
    fn oracle_agrees_with_construction_on_jellyfish(
        switches in 6usize..12,
        ports in 4usize..8,
        seed in 0u64..1000,
    ) {
        let topo = JellyfishConfig::half_servers(switches, ports, seed).build();
        let elp = Elp::shortest(&topo, 1, false);
        check_equivalence(&topo, &elp)?;
    }

    /// Rings are infeasible at one tag with an exhaustive verdict, the
    /// kernel is minimal (dropping any one path flips the verdict) and
    /// two tags always suffice.
    #[test]
    fn ring_kernels_are_minimal(n in 4usize..10) {
        let (topo, elp) = ring(n);
        let inf = match decide(&topo, &elp, Some(1)) {
            Verdict::Infeasible(i) => i,
            v => return Err(TestCaseError::Fail(format!(
                "ring({n}) at 1 tag: {}", v.summary()
            ))),
        };
        prop_assert!(inf.exhaustive);
        prop_assert_eq!(inf.lower_bound_tags, 2);
        prop_assert!(!inf.cycle.is_empty());
        for drop in 0..inf.kernel.len() {
            let sub: Vec<Path> = inf
                .kernel
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != drop)
                .map(|(_, &pi)| elp.paths()[pi].clone())
                .collect();
            prop_assert!(
                decide(&topo, &Elp::from_paths(sub), Some(1)).is_feasible(),
                "kernel not minimal: still infeasible without path {drop}"
            );
        }
        match decide(&topo, &elp, Some(2)) {
            Verdict::Feasible(f) => {
                prop_assert_eq!(f.tags_used, 2);
                if let Err(e) = f.witness.recheck(&topo, &elp) {
                    return Err(TestCaseError::Fail(format!("recheck: {e}")));
                }
            }
            v => return Err(TestCaseError::Fail(format!(
                "ring({n}) at 2 tags: {}", v.summary()
            ))),
        }
    }
}
