//! Topology expansion (paper §6, "Topology changes"): growing a Clos by
//! adding pods under the existing spines must not change any rule on the
//! pre-existing switches — Tagger's rules are local, so expansion is an
//! install-only operation.

use tagger_core::clos::clos_tagging;
use tagger_core::SwitchRule;
use tagger_topo::ClosConfig;

fn rules_by_name(
    cfg: &ClosConfig,
    k: usize,
) -> std::collections::BTreeMap<String, Vec<SwitchRule>> {
    let topo = cfg.build();
    let tagging = clos_tagging(&topo, k).unwrap();
    topo.switch_ids()
        .map(|sw| (topo.node(sw).name.clone(), tagging.rules().rules_for(sw)))
        .collect()
}

#[test]
fn adding_a_pod_is_install_only() {
    let before = ClosConfig {
        pods: 2,
        leaves_per_pod: 2,
        tors_per_pod: 2,
        spines: 2,
        hosts_per_tor: 2,
    };
    let after = ClosConfig { pods: 3, ..before };
    for k in 0..2usize {
        let old = rules_by_name(&before, k);
        let new = rules_by_name(&after, k);

        for (name, old_rules) in &old {
            let new_rules = &new[name];
            if name.starts_with('S') {
                // Spines gain rules for their new ports, but every
                // pre-existing rule survives verbatim (old ports keep
                // their numbers; new leaves wire onto fresh ports).
                for r in old_rules {
                    assert!(new_rules.contains(r), "k={k}: spine {name} lost rule {r:?}");
                }
                assert!(new_rules.len() > old_rules.len());
            } else {
                // Leaves and ToRs of the old pods are untouched.
                assert_eq!(old_rules, new_rules, "k={k}: {name} rules changed");
            }
        }
    }
}

#[test]
fn expansion_preserves_tag_count() {
    // Growing the fabric never inflates the priority budget: k-bounce
    // service still needs exactly k+1 lossless queues.
    for pods in 2..=4usize {
        let cfg = ClosConfig {
            pods,
            leaves_per_pod: 2,
            tors_per_pod: 2,
            spines: 2,
            hosts_per_tor: 2,
        };
        let topo = cfg.build();
        let tagging = clos_tagging(&topo, 1).unwrap();
        assert_eq!(tagging.num_lossless_tags_on(&topo), 2);
        tagging.graph().verify().unwrap();
    }
}
