//! # Tagger — practical PFC deadlock prevention for data center networks
//!
//! This crate is the umbrella facade of a full reproduction of
//! *"Tagger: Practical PFC Deadlock Prevention in Data Center Networks"*
//! (Hu et al., CoNEXT 2017). It re-exports the workspace crates:
//!
//! - [`topo`] — data-center topologies (Clos, FatTree, BCube, Jellyfish)
//!   with port-level links, layers and failure injection.
//! - [`routing`] — up-down / shortest-path / BCube routing, k-bounce
//!   expected-lossless-path (ELP) expansion, reroute and loop injection.
//! - [`core`] — the paper's contribution: tagged-graph generation
//!   (Algorithms 1 and 2), the optimal Clos construction, deadlock-freedom
//!   verification, match-action rule generation and TCAM compression.
//! - [`switch`] — a shared-buffer PFC switch model with per-priority
//!   ingress/egress queues and the three-step Tagger pipeline.
//! - [`sim`] — a deterministic discrete-event network simulator used to
//!   reproduce the paper's testbed experiments (deadlock formation, PAUSE
//!   propagation, routing loops and performance-penalty runs).
//!
//! ## Quickstart
//!
//! ```
//! use tagger::prelude::*;
//!
//! // Build a small 3-layer Clos fabric.
//! let topo = ClosConfig::small().build();
//!
//! // The operator wants shortest up-down paths plus 1-bounce reroutes
//! // to stay lossless.
//! let elp = Elp::updown_with_bounces(&topo, 1);
//!
//! // Tag it: the Clos-optimal construction needs k+1 = 2 lossless queues.
//! let tagging = clos_tagging(&topo, 1).expect("clos topology");
//! assert_eq!(tagging.num_lossless_tags_on(&topo), 2);
//!
//! // The result is certified deadlock-free, and every path in the ELP
//! // really stays lossless under the compiled rules.
//! tagging.graph().verify().expect("deadlock-free");
//! tagging.check_elp_lossless(&topo, &elp).expect("lossless");
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tagger_audit as audit;
pub use tagger_core as core;
pub use tagger_ctrl as ctrl;
pub use tagger_fleet as fleet;
pub use tagger_lint as lint;
pub use tagger_routing as routing;
pub use tagger_scenario as scenario;
pub use tagger_sim as sim;
pub use tagger_switch as switch;
pub use tagger_topo as topo;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use tagger_core::{
        clos::clos_tagging, greedy_minimize, tag_by_hop_count, Elp, Tag, TaggedGraph, Tagging,
    };
    pub use tagger_ctrl::{Controller, CtrlEvent, ElpPolicy};
    pub use tagger_fleet::{FabricSpec, Fleet, FleetConfig};
    pub use tagger_routing::{updown_paths, Path};
    pub use tagger_sim::{Experiment, Simulator};
    pub use tagger_topo::{ClosConfig, Layer, NodeId, Topology};
}
