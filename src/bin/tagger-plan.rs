//! `tagger-plan` — plan a Tagger deployment for a fabric.
//!
//! Computes the lossless-priority budget, the per-switch rules and the
//! compressed TCAM programs for a described topology, and certifies
//! deadlock freedom. What a network operator would run before rolling
//! Tagger out.
//!
//! ```text
//! tagger-plan clos   [--pods 2] [--leaves 2] [--tors 2] [--spines 2] [--hosts 4] [--bounces 1] [--rules]
//! tagger-plan fattree [--k 4] [--bounces 1] [--rules]
//! tagger-plan jellyfish [--switches 50] [--ports 12] [--seed 7] [--rules]
//! tagger-plan custom --file fabric.topo [--bounces 1] [--paths-per-pair 1] [--rules]
//! ```
//!
//! `custom` reads the plain-text format of
//! [`tagger::topo::Topology::from_spec_text`] (including the optional
//! `priorities N` budget directive); if every switch carries a layer,
//! the optimal layered construction is used, otherwise the generic
//! Algorithm 1+2 pipeline over a shortest-path ELP.
//!
//! Every plan consults the existence oracle ([`tagger::core::decide`])
//! before constructing tables, so the tool can tell two failures apart:
//!
//! - **exit 2** — the oracle proves *no* deadlock-free tagging of the
//!   ELP fits in the tag budget: no amount of re-planning helps; change
//!   the ELP or raise the budget.
//! - **exit 1** — a tagging provably exists but the construction
//!   heuristic did not find one: raise `--bounces`/`--paths-per-pair`.

use std::collections::BTreeMap;
use std::process::ExitCode;

use tagger::core::clos::clos_tagging;
use tagger::core::tcam::{Compression, TcamProgram};
use tagger::core::{decide, dscp::DscpCodec, Elp, Tagging, Verdict};
use tagger::topo::{fat_tree, ClosConfig, JellyfishConfig, Topology};

fn parse_flags(args: &[String]) -> (BTreeMap<String, String>, bool) {
    let mut flags = BTreeMap::new();
    let mut dump_rules = false;
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--rules" {
            dump_rules = true;
            i += 1;
        } else if let Some(name) = a.strip_prefix("--") {
            if i + 1 < args.len() {
                flags.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    (flags, dump_rules)
}

fn get(flags: &BTreeMap<String, String>, key: &str, default: usize) -> usize {
    flags
        .get(key)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("--{key} wants a number"))
        })
        .unwrap_or(default)
}

fn report(topo: &Topology, tagging: &Tagging, oracle_line: &str, dump_rules: bool) {
    tagging
        .graph()
        .verify()
        .expect("deadlock-freedom certificate");
    let priorities = tagging.num_lossless_tags_on(topo);
    let tcam = TcamProgram::compile(topo, tagging.rules(), Compression::Joint);
    println!(
        "fabric          : {} switches, {} hosts, {} links",
        topo.num_switches(),
        topo.num_hosts(),
        topo.num_links()
    );
    println!("lossless queues : {priorities} (+1 lossy)");
    println!("oracle          : {oracle_line}");
    println!(
        "rules           : {} exact-match total, max {} per switch",
        tagging.rules().num_rules(),
        tagging.rules().max_rules_per_switch()
    );
    println!(
        "tcam (joint)    : {} entries total, max {} per switch",
        tcam.total_entries(),
        tcam.max_entries_per_switch()
    );
    let codec = DscpCodec::new(40, priorities as u16);
    println!(
        "dscp plan       : tags ride codepoints {:?}; lossy = {}",
        codec.reserved_codepoints(),
        DscpCodec::LOSSY
    );
    println!("certificate     : deadlock-free (Theorem 5.1 verified)");
    if tagging.repairs() > 0 {
        println!(
            "note            : {} determinization repair rules",
            tagging.repairs()
        );
    }
    if dump_rules {
        println!();
        for sw in topo.switch_ids() {
            let Some(t) = tcam.tcam_for(sw) else { continue };
            println!("switch {} ({} entries):", topo.node(sw).name, t.len());
            for e in t.entries() {
                let ins: Vec<String> = e.in_ports.iter().map(|p| p.to_string()).collect();
                let outs: Vec<String> = e.out_ports.iter().map(|p| p.to_string()).collect();
                println!(
                    "  tag {} in [{}] out [{}] -> tag {}",
                    e.tag,
                    ins.join(","),
                    outs.join(","),
                    e.new_tag
                );
            }
        }
    }
}

/// Oracle-gated planning: decide existence first, then construct.
///
/// Exit codes: 0 planned and certified; 1 a tagging exists but the
/// construction failed to find one (widen the search); 2 the oracle
/// proves no tagging fits the budget (re-planning cannot help).
fn plan(
    topo: &Topology,
    elp: &Elp,
    budget: Option<usize>,
    construct: impl FnOnce() -> Result<Tagging, String>,
    dump_rules: bool,
) -> ExitCode {
    let verdict = decide(topo, elp, budget);
    match &verdict {
        Verdict::Infeasible(inf) => {
            eprintln!("plan rejected: {}", verdict.summary());
            eprintln!(
                "the minimal infeasible kernel has {} path(s):",
                inf.kernel.len()
            );
            for &i in inf.kernel.iter().take(12) {
                if let Some(p) = elp.paths().get(i) {
                    eprintln!("  {}", p.display(topo));
                }
            }
            if inf.kernel.len() > 12 {
                eprintln!("  ... and {} more", inf.kernel.len() - 12);
            }
            eprintln!(
                "this is not a search-budget problem — no deadlock-free tagging \
                 of this ELP exists within {} tag(s); drop a kernel path or raise \
                 the priority budget",
                inf.budget
            );
            ExitCode::from(2)
        }
        Verdict::Feasible(f) => match construct() {
            Ok(tagging) => {
                let line = format!(
                    "feasible, proven minimum >= {} lossless tag(s)",
                    f.lower_bound_tags
                );
                report(topo, &tagging, &line, dump_rules);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("construction failed: {e}");
                eprintln!(
                    "but the oracle proves a deadlock-free tagging exists within \
                     {} tag(s) — the heuristic needs a wider search: raise \
                     --bounces or --paths-per-pair",
                    f.tags_used
                );
                ExitCode::FAILURE
            }
        },
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!(
            "usage: tagger-plan <clos|fattree|jellyfish|custom> [flags]; see --help in source"
        );
        return ExitCode::FAILURE;
    };
    let (flags, dump_rules) = parse_flags(&args[1..]);
    match cmd.as_str() {
        "clos" => {
            let cfg = ClosConfig {
                pods: get(&flags, "pods", 2),
                leaves_per_pod: get(&flags, "leaves", 2),
                tors_per_pod: get(&flags, "tors", 2),
                spines: get(&flags, "spines", 2),
                hosts_per_tor: get(&flags, "hosts", 4),
            };
            let topo = cfg.build();
            let k = get(&flags, "bounces", 1);
            println!("plan: clos {cfg:?}, {k}-bounce lossless service\n");
            let elp = Elp::updown_with_bounces(&topo, k);
            plan(
                &topo,
                &elp,
                Some(k + 1),
                || clos_tagging(&topo, k).map_err(|e| format!("clos tagging: {e:?}")),
                dump_rules,
            )
        }
        "fattree" => {
            let topo = fat_tree(get(&flags, "k", 4));
            let k = get(&flags, "bounces", 1);
            println!(
                "plan: fat-tree k={}, {k}-bounce lossless service\n",
                get(&flags, "k", 4)
            );
            let elp = Elp::updown_with_bounces(&topo, k);
            plan(
                &topo,
                &elp,
                Some(k + 1),
                || clos_tagging(&topo, k).map_err(|e| format!("clos tagging: {e:?}")),
                dump_rules,
            )
        }
        "jellyfish" => {
            let cfg = JellyfishConfig::half_servers(
                get(&flags, "switches", 50),
                get(&flags, "ports", 12),
                get(&flags, "seed", 7) as u64,
            );
            let topo = cfg.build();
            println!(
                "plan: jellyfish {} switches x {} ports (seed {}), shortest-path ELP\n",
                cfg.switches, cfg.ports_per_switch, cfg.seed
            );
            let elp = Elp::shortest(&topo, get(&flags, "paths-per-pair", 1), false);
            plan(
                &topo,
                &elp,
                None,
                || Tagging::from_elp(&topo, &elp).map_err(|e| format!("pipeline: {e:?}")),
                dump_rules,
            )
        }
        "custom" => {
            let Some(path) = flags.get("file") else {
                eprintln!("custom needs --file <spec>");
                return ExitCode::FAILURE;
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let spec = match Topology::parse_spec(&text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let topo = spec.topo;
            // A `priorities N` directive in the spec caps the budget the
            // oracle checks against; otherwise the hardware ceiling.
            let budget = spec.priorities.map(|p| p as usize);
            let layered = topo
                .switch_ids()
                .all(|s| topo.node(s).layer.rank().is_some());
            if layered {
                let k = get(&flags, "bounces", 1);
                println!("plan: custom layered fabric from {path}, {k}-bounce service\n");
                let elp = Elp::updown_with_bounces(&topo, k);
                plan(
                    &topo,
                    &elp,
                    budget.or(Some(k + 1)),
                    || clos_tagging(&topo, k).map_err(|e| format!("clos tagging: {e:?}")),
                    dump_rules,
                )
            } else {
                println!("plan: custom fabric from {path}, host-to-host shortest-path ELP\n");
                let elp = Elp::shortest(&topo, get(&flags, "paths-per-pair", 1), true);
                plan(
                    &topo,
                    &elp,
                    budget,
                    || Tagging::from_elp(&topo, &elp).map_err(|e| format!("pipeline: {e:?}")),
                    dump_rules,
                )
            }
        }
        other => {
            eprintln!("unknown fabric {other:?}; expected clos, fattree, jellyfish or custom");
            ExitCode::FAILURE
        }
    }
}
