//! `tagger-lint` — pre-deployment static analysis for Tagger artifacts.
//!
//! ```text
//! tagger-lint check <file...> [--format human|json] [--elp updown|bounces=K]
//!                   [--budget N] [--no-audit] [--pods N] [--leaves N]
//!                   [--tors N] [--spines N] [--hosts N]
//! tagger-lint explain <code>
//! ```
//!
//! `check` lints checkpoint (`.ckpt`), trace (`.trace`), scenario
//! (`.scn`) and topology-spec (`.topo`) files — the kind is sniffed
//! from content, so misnamed files still work — and exits non-zero iff
//! at least one error-severity diagnostic was emitted. Checkpoints and
//! topology specs carry their own topology; scenarios declare theirs;
//! traces are resolved against a Clos built
//! from the `--pods`-family flags (defaults match `tagger-ctrld`). `--elp` additionally checks that every expected
//! lossless path stays lossless under a checkpoint's tables; `--no-audit`
//! skips the independent-auditor cross-check. `--budget N` overrides the
//! lossless-tag budget the feasibility oracle (T0701/T0702) checks
//! against — default is the spec's `priorities` directive, else the
//! 8-class hardware ceiling. `--format json` emits the byte-stable
//! structured report for CI and editors.
//!
//! `explain` prints the one-line description of a diagnostic code.

use std::process::ExitCode;

use tagger::lint::{codes, lint_files, render_json, ElpSpec, LintOptions};
use tagger::topo::ClosConfig;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("usage: tagger-lint <check|explain> ...");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "check" => cmd_check(rest),
        "explain" => cmd_explain(rest),
        other => Err(format!("unknown subcommand {other:?}")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// Positional + `--flag value` parsing (`--no-audit` is valueless).
fn parse(
    rest: &[String],
) -> Result<(Vec<String>, std::collections::BTreeMap<String, String>), String> {
    let mut positional = Vec::new();
    let mut flags = std::collections::BTreeMap::new();
    let mut i = 0;
    while i < rest.len() {
        let a = &rest[i];
        if a == "--no-audit" {
            flags.insert("no-audit".to_string(), String::new());
            i += 1;
        } else if let Some(name) = a.strip_prefix("--") {
            if i + 1 < rest.len() {
                flags.insert(name.to_string(), rest[i + 1].clone());
                i += 2;
            } else {
                return Err(format!("--{name} wants a value"));
            }
        } else {
            positional.push(a.clone());
            i += 1;
        }
    }
    Ok((positional, flags))
}

fn get(
    flags: &std::collections::BTreeMap<String, String>,
    name: &str,
    default: usize,
) -> Result<usize, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} wants a number, got {v:?}")),
    }
}

fn cmd_check(rest: &[String]) -> Result<ExitCode, String> {
    let (files, flags) = parse(rest)?;
    if files.is_empty() {
        return Err("usage: tagger-lint check <file...>".into());
    }
    let elp = match flags.get("elp").map(String::as_str) {
        None => None,
        Some("updown") => Some(ElpSpec::UpDown),
        Some(spec) => match spec.strip_prefix("bounces=") {
            Some(k) => {
                Some(ElpSpec::Bounces(k.parse().map_err(|_| {
                    format!("--elp bounces wants a number, got {k:?}")
                })?))
            }
            None => return Err(format!("--elp wants `updown` or `bounces=K`, got {spec:?}")),
        },
    };
    let trace_topo = ClosConfig {
        pods: get(&flags, "pods", 2)?,
        leaves_per_pod: get(&flags, "leaves", 2)?,
        tors_per_pod: get(&flags, "tors", 2)?,
        spines: get(&flags, "spines", 2)?,
        hosts_per_tor: get(&flags, "hosts", 4)?,
    }
    .build();
    let tag_budget = match flags.get("budget") {
        None => None,
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| format!("--budget wants a number, got {v:?}"))?,
        ),
    };
    let opts = LintOptions {
        elp,
        audit_cross_check: !flags.contains_key("no-audit"),
        trace_topo,
        tag_budget,
    };
    let report = lint_files(&files, &opts);
    match flags.get("format").map(String::as_str) {
        None | Some("human") => print!("{}", report.render_human()),
        Some("json") => print!("{}", render_json(&report)),
        Some(other) => return Err(format!("--format wants `human` or `json`, got {other:?}")),
    }
    Ok(if report.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn cmd_explain(rest: &[String]) -> Result<ExitCode, String> {
    let (positional, _) = parse(rest)?;
    let [code] = &positional[..] else {
        return Err("usage: tagger-lint explain <code>".into());
    };
    match codes::describe(code) {
        Some(description) => {
            println!("{code}: {description}");
            Ok(ExitCode::SUCCESS)
        }
        None => Err(format!("unknown diagnostic code {code:?}")),
    }
}
