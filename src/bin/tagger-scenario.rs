//! `tagger-scenario` — run, sweep and list declarative `.scn` scenarios.
//!
//! ```text
//! tagger-scenario run <file-or-dir...> [--seed N] [--queue wheel|heap]
//!                     [--json FILE]
//! tagger-scenario sweep <file-or-dir...> [--seed N] [--queue wheel|heap]
//!                     [--json FILE]
//! tagger-scenario list <file-or-dir...>
//! ```
//!
//! `run` expands every scenario (at every sweep point), simulates it,
//! grades its `assert` block and prints one PASS/FAIL line per scenario;
//! the exit code is non-zero iff anything failed. `sweep` is `run` plus
//! a per-point metrics table — the view for `sweep hosts 32..1024`
//! grids. `list` parses without running.
//!
//! A directory argument expands to its `*.scn` files in sorted order
//! (non-recursive). `--seed` overrides every scenario's `seed`
//! directive; `--queue` forces the event-queue backend (the
//! wheel-vs-heap bench runs the same files both ways). `--json` writes
//! the byte-stable machine report for CI diffing.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use tagger::scenario::{parse_all, points, RunOptions, SuiteReport};
use tagger::sim::QueueKind;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("usage: tagger-scenario <run|sweep|list> <file-or-dir...>");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "run" => cmd_run(rest, false),
        "sweep" => cmd_run(rest, true),
        "list" => cmd_list(rest),
        other => Err(format!("unknown subcommand {other:?}")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// Positional + `--flag value` parsing.
fn parse_args(
    rest: &[String],
) -> Result<(Vec<String>, std::collections::BTreeMap<String, String>), String> {
    let mut positional = Vec::new();
    let mut flags = std::collections::BTreeMap::new();
    let mut i = 0;
    while i < rest.len() {
        let a = &rest[i];
        if let Some(name) = a.strip_prefix("--") {
            if i + 1 < rest.len() {
                flags.insert(name.to_string(), rest[i + 1].clone());
                i += 2;
            } else {
                return Err(format!("--{name} needs a value"));
            }
        } else {
            positional.push(a.clone());
            i += 1;
        }
    }
    Ok((positional, flags))
}

/// Expands directories to their `*.scn` files, sorted; files pass
/// through untouched.
fn expand_paths(positional: &[String]) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    for p in positional {
        let path = Path::new(p);
        if path.is_dir() {
            let mut batch: Vec<PathBuf> = std::fs::read_dir(path)
                .map_err(|e| format!("cannot read directory {p}: {e}"))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|f| f.extension().is_some_and(|x| x == "scn"))
                .collect();
            batch.sort();
            files.extend(batch);
        } else {
            files.push(path.to_path_buf());
        }
    }
    if files.is_empty() {
        return Err("no .scn files given".to_string());
    }
    Ok(files)
}

fn options_for(
    file: &Path,
    flags: &std::collections::BTreeMap<String, String>,
) -> Result<RunOptions, String> {
    let seed = match flags.get("seed") {
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| format!("--seed: `{v}` is not a number"))?,
        ),
        None => None,
    };
    let queue = match flags.get("queue").map(String::as_str) {
        None => None,
        Some("wheel") => Some(QueueKind::TimingWheel),
        Some("heap") => Some(QueueKind::BinaryHeap),
        Some(other) => {
            return Err(format!(
                "--queue: expected `wheel` or `heap`, got `{other}`"
            ))
        }
    };
    Ok(RunOptions {
        seed,
        queue,
        base_dir: file.parent().unwrap_or(Path::new(".")).to_path_buf(),
    })
}

fn cmd_run(rest: &[String], per_point: bool) -> Result<ExitCode, String> {
    let (positional, flags) = parse_args(rest)?;
    let files = expand_paths(&positional)?;
    let mut suite = SuiteReport::default();
    for file in &files {
        let display = file.display().to_string();
        let text = std::fs::read_to_string(file).map_err(|e| format!("{display}: {e}"))?;
        let opts = options_for(file, &flags)?;
        match tagger::scenario::run_scenario(&text, &display, &opts) {
            Ok(result) => suite.scenarios.push(result),
            Err(issue) => return Err(format!("{display}:{issue}")),
        }
    }
    print!("{}", suite.render());
    if per_point {
        print!("{}", point_table(&suite));
    }
    if let Some(out) = flags.get("json") {
        std::fs::write(out, suite.to_json()).map_err(|e| format!("cannot write {out}: {e}"))?;
    }
    Ok(if suite.pass() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// The sweep view: one metrics row per point.
fn point_table(suite: &SuiteReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for s in &suite.scenarios {
        for p in &s.points {
            let vars = if p.vars.is_empty() {
                String::new()
            } else {
                let body: Vec<String> = p.vars.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!(" [{}]", body.join(" "))
            };
            let m = &p.metrics;
            let _ = writeln!(
                out,
                "{}{vars}: {} events, {} B delivered, {} pauses, {} lossless drops, \
                 {} trips, max stall {} ns{}",
                s.name,
                m.events_processed,
                m.delivered_bytes,
                m.pauses_sent,
                m.lossless_drops,
                m.watchdog_trips,
                m.max_pause_ns,
                match m.deadlock_at_ns {
                    Some(t) => format!(", DEADLOCK at {t} ns"),
                    None => String::new(),
                },
            );
        }
    }
    out
}

fn cmd_list(rest: &[String]) -> Result<ExitCode, String> {
    let (positional, _) = parse_args(rest)?;
    let files = expand_paths(&positional)?;
    let mut bad = false;
    for file in &files {
        let display = file.display().to_string();
        let text = std::fs::read_to_string(file).map_err(|e| format!("{display}: {e}"))?;
        let (s, issues) = parse_all(&text);
        if issues.is_empty() {
            let n_points = points(&s).len();
            println!(
                "{display}: {} ({} assert{}, {} point{})",
                s.name,
                s.asserts.len(),
                if s.asserts.len() == 1 { "" } else { "s" },
                n_points,
                if n_points == 1 { "" } else { "s" },
            );
        } else {
            bad = true;
            for i in &issues {
                println!("{display}:{i}");
            }
        }
    }
    Ok(if bad {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}
