//! `tagger-ctrld` — replay a control-plane event trace through the
//! incremental Tagger controller.
//!
//! Boots a [`tagger::ctrl::Controller`] for a 3-layer Clos, commits the
//! epoch-0 tagging, then feeds it the events from a plain-text trace
//! (see `examples/reroute.trace` for the format) and prints, per epoch,
//! what a real deployment would ship to switches: per-switch rule
//! deltas, their cost against a full-table reinstall, and the
//! verification verdict. Ends with the controller's metrics report.
//!
//! ```text
//! tagger-ctrld [trace-file] [--pods N] [--leaves N] [--tors N] [--spines N]
//!              [--hosts N] [--bounces K] [--tcam-budget N] [--verbose]
//!              [--chaos seed=N,fail_rate=P[,timeout_rate=P][,partial_rate=P]]
//!              [--journal PATH] [--checkpoint-every N] [--crash-after N]
//!              [--audit] [--export-checkpoint PATH]
//!              [--watchdog WINDOW_US [--watchdog-policy drop|demote]]
//! ```
//!
//! With no trace file, replays the canonical single-link flap
//! (down L1 T1, then up L1 T1) — the paper's reroute scenario.
//!
//! Installs go through a southbound: reliable by default, or the seeded
//! fault-injecting one with `--chaos` (installs are refused, time out,
//! or partially apply; the controller retries with exponential backoff
//! and rolls whole epochs back rather than ever leaving the fleet
//! mixed-epoch). Consecutive events on the same link are flap-damped
//! into one recompute.
//!
//! With `--journal` every event is write-ahead journaled and a snapshot
//! checkpoint is taken every `--checkpoint-every` outcomes (default 4).
//! `--crash-after N` runs the crash-recovery drill: the controller
//! "crashes" after N epochs (mid-epoch — the next batch is journaled
//! but unprocessed), is rebuilt from the journal, and the drill verifies
//! the recovered committed tables are byte-for-byte the crashed
//! controller's before reconciling the fleet and finishing the trace.
//!
//! `--watchdog WINDOW_US` runs the data-plane safety-net drill instead
//! of a trace replay: the embedded corrupted tables from
//! `examples/corrupted.ckpt` are audited, their counterexample flows
//! are replayed once without a watchdog (permanent deadlock) and once
//! with the per-queue PFC watchdog armed at the given window
//! (`--watchdog-policy` selects drain-to-drop or demote-to-lossy,
//! default demote). The drill then closes the loop: the trips become
//! quarantine events, are journaled through a controller that crashes
//! mid-replay, recovery must replay every quarantine from the journal,
//! and the corrective tables must pass an independent re-audit. Any
//! broken link in that chain exits non-zero.
//!
//! With `--audit` every committed epoch (including the bootstrap) is
//! handed to the independent `tagger-audit` verifier, which decompiles
//! the TCAM entries the tables compile to and re-proves deadlock
//! freedom from scratch; the audit metrics print alongside the
//! controller's. `--export-checkpoint PATH` writes the final committed
//! tables as a `tagger-audit` checkpoint for offline auditing.
//!
//! The process exits non-zero if any commit violates the incremental
//! promise (delta ops ≥ full reinstall ops for a single-link event),
//! any epoch fails verification, any audit finds a violation, the fleet
//! ever diverges from the committed tables, or crash recovery does not
//! reconverge exactly.

use std::collections::BTreeMap;
use std::process::ExitCode;

use tagger::audit::{checkpoint, Auditor};
use tagger::ctrl::{
    coalesce_flaps, parse_trace, recover, ChaosConfig, ChaosSouthbound, CommitObserver,
    CommitReport, Controller, CtrlEvent, ElpPolicy, EpochOutcome, InstallPolicy, Journal,
    NoopObserver, ReliableSouthbound, Snapshot, Southbound,
};
use tagger::topo::{ClosConfig, Topology};

type Args = (Option<String>, BTreeMap<String, String>, bool);

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut flags = BTreeMap::new();
    let mut trace = None;
    let mut verbose = false;
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--verbose" {
            verbose = true;
            i += 1;
        } else if a == "--audit" {
            flags.insert("audit".to_string(), String::new());
            i += 1;
        } else if let Some(name) = a.strip_prefix("--") {
            if i + 1 < args.len() {
                flags.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                return Err(format!("--{name} wants a value"));
            }
        } else {
            trace = Some(a.clone());
            i += 1;
        }
    }
    Ok((trace, flags, verbose))
}

fn get(flags: &BTreeMap<String, String>, key: &str, default: usize) -> Result<usize, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} wants a number, got {v:?}")),
    }
}

fn setup(args: &[String]) -> Result<(Args, ClosConfig, ElpPolicy, Option<usize>), String> {
    let parsed = parse_args(args)?;
    let flags = &parsed.1;
    let config = ClosConfig {
        pods: get(flags, "pods", 2)?,
        leaves_per_pod: get(flags, "leaves", 2)?,
        tors_per_pod: get(flags, "tors", 2)?,
        spines: get(flags, "spines", 2)?,
        hosts_per_tor: get(flags, "hosts", 4)?,
    };
    let policy = ElpPolicy::with_bounces(get(flags, "bounces", 1)?);
    let budget = match flags.get("tcam-budget") {
        None => None,
        Some(_) => Some(get(flags, "tcam-budget", 0)?),
    };
    Ok((parsed, config, policy, budget))
}

fn batch_label(batch: &[&CtrlEvent]) -> String {
    if batch.len() == 1 {
        batch[0].label().to_string()
    } else {
        format!("{} x{} (flap-damped)", batch[0].label(), batch.len())
    }
}

fn print_outcome(topo: &Topology, label: &str, outcome: &EpochOutcome, verbose: bool) {
    match outcome {
        EpochOutcome::Committed(report) => {
            println!(
                "epoch {} <- {}: committed in {:?}; {} ELP paths, {} lossless \
                 priorities, worst-switch TCAM {}",
                report.epoch,
                label,
                report.recompute,
                report.elp_paths,
                report.lossless_tags,
                report.tcam_worst_switch,
            );
            println!(
                "  deltas: {} switches touched, +{} -{} rules ({} ops vs {} for a \
                 full reinstall); {} install attempt(s), {:?} backoff",
                report.switches_touched(),
                report.rules_added,
                report.rules_removed,
                report.delta_ops(),
                report.full_reinstall_ops(),
                report.install_attempts,
                report.install_backoff,
            );
            for delta in &report.deltas {
                println!(
                    "    {}: +{} -{}",
                    topo.node(delta.switch).name,
                    delta.add.len(),
                    delta.remove.len()
                );
                if verbose {
                    for r in &delta.remove {
                        println!(
                            "      - (tag {}, in {}, out {}) -> {}",
                            r.tag.0, r.in_port.0, r.out_port.0, r.new_tag.0
                        );
                    }
                    for r in &delta.add {
                        println!(
                            "      + (tag {}, in {}, out {}) -> {}",
                            r.tag.0, r.in_port.0, r.out_port.0, r.new_tag.0
                        );
                    }
                }
            }
        }
        EpochOutcome::RolledBack {
            abandoned_version,
            reason,
        } => {
            println!(
                "epoch <- {}: ROLLED BACK (view v{} abandoned): {}",
                label, abandoned_version, reason,
            );
        }
    }
}

/// Tallies the incremental-promise check over processed batches.
fn tally(
    batches: &[&[&CtrlEvent]],
    outcomes: &[EpochOutcome],
    single_link_commits: &mut usize,
    incremental_wins: &mut usize,
) {
    for (batch, outcome) in batches.iter().zip(outcomes) {
        let single_link =
            batch.len() == 1 && matches!(batch[0], CtrlEvent::LinkDown(_) | CtrlEvent::LinkUp(_));
        if let EpochOutcome::Committed(report) = outcome {
            if single_link && !report.deltas.is_empty() {
                *single_link_commits += 1;
                if report.delta_ops() < report.full_reinstall_ops() {
                    *incremental_wins += 1;
                }
            }
        }
    }
}

/// Runs the independent verifier over every committed epoch and keeps
/// score. The controller never sees the auditor (the hook is the
/// [`CommitObserver`] trait); violations only surface here, as prints
/// and a non-zero exit.
struct AuditObserver {
    auditor: Auditor,
    violations: u64,
}

impl AuditObserver {
    fn new(topo: Topology) -> AuditObserver {
        AuditObserver {
            auditor: Auditor::new(topo),
            violations: 0,
        }
    }

    fn audit_epoch(&mut self, epoch: u64, rules: &tagger::core::RuleSet) {
        let topo = self.auditor.topo().clone();
        let report = self.auditor.audit(epoch, rules);
        if report.is_certified() {
            let cert = report.certificate.as_ref().expect("certified");
            println!(
                "  audit: epoch {} certified deadlock-free ({} buffers, {} edges, {} rules decompiled)",
                epoch, cert.total_nodes, cert.total_edges, report.rules_decompiled
            );
        } else {
            self.violations += 1;
            print!("{}", report.render(&topo));
        }
    }
}

impl CommitObserver for AuditObserver {
    fn on_commit(&mut self, _topo: &Topology, snapshot: &Snapshot, _report: &CommitReport) {
        self.audit_epoch(snapshot.epoch, &snapshot.rules);
    }
}

/// The `--watchdog` drill: the full safety-net loop on the corrupted
/// fixture. Audit finds the cycle, the sim shows the deadlock and its
/// watchdog rescue, the trips become journaled controller quarantines
/// that survive a crash, and the corrective tables re-certify.
fn watchdog_drill(
    window_us: u64,
    policy: tagger::switch::WatchdogPolicy,
    journal_path: Option<String>,
) -> Result<(), String> {
    use tagger::audit::REPLAY_END_NS;
    use tagger::sim::experiments::{quarantine_events, watchdog_rescue};
    use tagger::switch::WatchdogConfig;

    let ckpt = checkpoint::parse(include_str!("../../examples/corrupted.ckpt"))
        .map_err(|e| format!("embedded corrupted.ckpt: {e}"))?;
    let topo = ckpt.topo.clone();
    let mut auditor = Auditor::new(topo.clone());
    let audit = auditor.audit(ckpt.epoch, &ckpt.rules);
    if audit.is_certified() {
        return Err("drill fixture unexpectedly certified".into());
    }
    let cx = audit
        .counterexample
        .clone()
        .ok_or("audit found no counterexample to replay")?;
    println!(
        "watchdog drill: corrupted tables, cycle {}",
        cx.describe(&topo)
    );

    // Baseline: with the watchdog off the deadlock is permanent.
    let (baseline, _) =
        watchdog_rescue(&topo, &ckpt.rules, cx.flows.clone(), None, REPLAY_END_NS).run();
    if baseline.deadlock.is_none() {
        return Err("baseline (watchdog off) did not deadlock".into());
    }
    println!(
        "  watchdog off: deadlocked, {} flow(s) frozen at the horizon",
        baseline.stalled_flows(5)
    );

    // Armed: recovery within two windows of the first trip.
    let window_ns = window_us * 1_000;
    let cfg = WatchdogConfig::with_policy(window_ns, policy);
    let (report, _) = watchdog_rescue(
        &topo,
        &ckpt.rules,
        cx.flows.clone(),
        Some(cfg),
        REPLAY_END_NS,
    )
    .run();
    let wd = report
        .watchdog
        .clone()
        .ok_or("armed run produced no watchdog report")?;
    println!(
        "  watchdog on ({window_us} us, {policy:?}): {}",
        wd.stats.describe()
    );
    let first = wd.first_trip_at.ok_or("armed watchdog never tripped")?;
    let cleared = wd.cleared_at.ok_or("cycle never cleared after the trips")?;
    if cleared - first > 2 * window_ns {
        return Err(format!(
            "recovery took {} ns from first trip, more than 2 windows",
            cleared - first
        ));
    }
    println!(
        "    first trip at {} us, cycle cleared at {} us",
        first / 1_000,
        cleared / 1_000
    );

    // Cause-directed attribution: the confirmed cycle must come with an
    // in-band initial-trigger claim that survives the ground-truth
    // cross-check and names one of its own members. A misattribution
    // here fails the drill (non-zero exit) — quarantining the wrong hop
    // is worse than quarantining the victim.
    let trig = wd
        .trigger
        .clone()
        .ok_or("confirmed deadlock produced no initial-trigger attribution")?;
    if !trig.matches_ground_truth {
        return Err(format!(
            "attribution failed its ground-truth cross-check: {trig:?}"
        ));
    }
    if !trig.scc.contains(&trig.queue()) {
        return Err(format!(
            "attributed trigger {:?} is not a member of its confirmed SCC {:?}",
            trig.queue(),
            trig.scc
        ));
    }
    println!(
        "    trigger: {} port {} prio {} ({}, pause epoch {} us); \
         time-to-attribute {} us, time-to-detect {} us",
        topo.node(trig.switch).name,
        trig.port.0,
        trig.prio,
        if trig.hops == 0 {
            "self-originated".to_string()
        } else {
            format!("inherited, {} hop(s) from origin", trig.hops)
        },
        trig.pause_epoch / 1_000,
        trig.time_to_attribute() / 1_000,
        wd.time_to_detect().unwrap_or(0) / 1_000,
    );

    // Closed loop: trips -> quarantine events -> journaled controller
    // that crashes mid-replay and must recover every quarantine.
    let events = quarantine_events(&report);
    if events.is_empty() {
        return Err("trips produced no quarantine events".into());
    }
    for e in &events {
        println!("    -> {}", e.trace_line(&topo));
    }
    let policy_elp = ElpPolicy::with_bounces(1);
    let mut ctrl = Controller::with_budget(topo.clone(), policy_elp, None)
        .map_err(|e| format!("drill bootstrap: {e}"))?;
    let mut sb = ReliableSouthbound::new();
    sb.bootstrap(&ctrl.committed().rules);
    let install = InstallPolicy::default();
    let jpath = journal_path.unwrap_or_else(|| {
        std::env::temp_dir()
            .join("tagger-watchdog-drill.journal")
            .to_string_lossy()
            .into_owned()
    });
    let mut journal =
        Journal::create(&jpath).map_err(|e| format!("cannot create journal {jpath}: {e}"))?;
    let drive = journal
        .drive(&mut ctrl, &events, &mut sb, &install, 1, Some(1))
        .map_err(|e| format!("journaled quarantine replay: {e}"))?;
    let pre_quarantines = ctrl.state().quarantines.clone();
    let pre_rules = ctrl.committed().rules.clone();
    drop(ctrl);
    println!(
        "    -- crash after {} quarantine epoch(s); recovering from {jpath} --",
        drive.outcomes.len()
    );
    let rec =
        recover(&jpath, topo.clone(), policy_elp, None).map_err(|e| format!("recovery: {e}"))?;
    let mut ctrl = rec.controller;
    if ctrl.state().quarantines != pre_quarantines {
        return Err(format!(
            "recovery lost quarantines: {:?} vs pre-crash {:?}",
            ctrl.state().quarantines,
            pre_quarantines
        ));
    }
    if ctrl.committed().rules != pre_rules {
        return Err("recovered tables differ from the crashed controller's".into());
    }
    println!(
        "    recovered: {} event(s) replayed, {} quarantine(s) intact",
        rec.replayed,
        pre_quarantines.len()
    );
    ctrl.reconcile(&mut sb);
    // Finish the interrupted work: the in-flight batch the journal
    // preserved, plus the quarantines that were never journaled
    // (watchdog events are singleton batches, so batch i == event i).
    let processed = drive.outcomes.len() + 1;
    let remaining: Vec<CtrlEvent> = rec
        .tail
        .iter()
        .cloned()
        .chain(events.iter().skip(processed.min(events.len())).cloned())
        .collect();
    ctrl.replay_damped_via(remaining.iter(), &mut sb, &install)
        .map_err(|e| format!("post-recovery replay: {e}"))?;
    // Trip events sharing one attributed trigger dedupe into a single
    // quarantine of the trigger hop, so count distinct effective
    // targets, not raw events.
    let effective: std::collections::BTreeSet<_> = events
        .iter()
        .filter_map(|e| e.effective_quarantine())
        .collect();
    if ctrl.state().quarantines.len() != effective.len() {
        return Err(format!(
            "expected {} active quarantine(s) after the full replay, have {}",
            effective.len(),
            ctrl.state().quarantines.len()
        ));
    }
    if events.len() > effective.len() {
        println!(
            "    attribution dedupe: {} trip event(s) collapsed onto {} quarantine target(s)",
            events.len(),
            effective.len()
        );
    }

    // Re-audit: the corrective tables must certify deadlock-free.
    let mut recheck = Auditor::new(topo.clone());
    let verdict = recheck.audit(ctrl.committed().epoch, &ctrl.committed().rules);
    if !verdict.is_certified() {
        return Err(format!(
            "corrective tables failed the re-audit:\n{}",
            verdict.render(&topo)
        ));
    }
    let m = ctrl.metrics();
    println!(
        "    corrective epoch {} certified deadlock-free; {} quarantine(s) active, \
         {} watchdog trip event(s), +{} -{} rules across commits",
        ctrl.committed().epoch,
        ctrl.state().quarantines.len(),
        m.watchdog_trips,
        m.rules_added,
        m.rules_removed,
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ((trace_file, flags, verbose), config, policy, budget) = match setup(&args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let topo = config.build();

    let chaos = match flags.get("chaos").map(|s| ChaosConfig::parse(s)) {
        None => None,
        Some(Ok(cfg)) => Some(cfg),
        Some(Err(e)) => {
            eprintln!("--chaos: {e}");
            return ExitCode::FAILURE;
        }
    };
    let journal_path = flags.get("journal").cloned();
    let checkpoint_every = match get(&flags, "checkpoint-every", 4) {
        Ok(n) => n as u64,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let crash_after = match flags.get("crash-after") {
        None => None,
        Some(_) => match get(&flags, "crash-after", 0) {
            Ok(n) => Some(n as u64),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
    };
    if crash_after.is_some() && journal_path.is_none() {
        eprintln!("--crash-after needs --journal (recovery replays the journal)");
        return ExitCode::FAILURE;
    }
    if let Some(w) = flags.get("watchdog") {
        let window_us: u64 = match w.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("--watchdog wants a window in microseconds, got {w:?}");
                return ExitCode::FAILURE;
            }
        };
        let policy = match flags.get("watchdog-policy").map(|s| s.as_str()) {
            None | Some("demote") => tagger::switch::WatchdogPolicy::Demote,
            Some("drop") => tagger::switch::WatchdogPolicy::Drop,
            Some(other) => {
                eprintln!("--watchdog-policy wants drop or demote, got {other:?}");
                return ExitCode::FAILURE;
            }
        };
        return match watchdog_drill(window_us, policy, journal_path) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("watchdog drill FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let mut audit: Option<AuditObserver> = flags
        .contains_key("audit")
        .then(|| AuditObserver::new(topo.clone()));
    let mut noop = NoopObserver;
    // Picks the live observer for a drive call without borrowing `audit`
    // for longer than the call.
    fn obs<'a>(
        audit: &'a mut Option<AuditObserver>,
        noop: &'a mut NoopObserver,
    ) -> &'a mut dyn CommitObserver {
        match audit.as_mut() {
            Some(a) => a,
            None => noop,
        }
    }

    let text = match &trace_file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => "down L1 T1\nup L1 T1\n".to_string(),
    };
    let events = match parse_trace(&topo, &text) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let mut ctrl = match Controller::with_budget(topo.clone(), policy, budget) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bootstrap failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let epoch0 = ctrl.committed();
    println!(
        "epoch 0 (bootstrap): {} switches, {} links, {} ELP paths -> {} rules, \
         {} lossless priorities, worst-switch TCAM {}",
        topo.num_switches(),
        topo.num_links(),
        epoch0.elp_paths,
        epoch0.rules.num_rules(),
        epoch0.lossless_tags,
        epoch0.tcam_worst_switch,
    );
    if let Some(a) = audit.as_mut() {
        a.audit_epoch(0, &ctrl.committed().rules);
    }

    let mut southbound: Box<dyn Southbound> = match chaos {
        Some(cfg) => {
            println!("southbound: chaos ({cfg})");
            Box::new(ChaosSouthbound::new(cfg))
        }
        None => Box::new(ReliableSouthbound::new()),
    };
    southbound.bootstrap(&ctrl.committed().rules);
    let install_policy = InstallPolicy::default();

    let refs: Vec<&CtrlEvent> = events.iter().collect();
    let batches = coalesce_flaps(&refs);
    let mut single_link_commits = 0usize;
    let mut incremental_wins = 0usize;
    let mut failed = false;

    if let Some(path) = &journal_path {
        let mut journal = match Journal::create(path) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("cannot create journal {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let report = match journal.drive_observed(
            &mut ctrl,
            &events,
            southbound.as_mut(),
            &install_policy,
            checkpoint_every,
            crash_after,
            obs(&mut audit, &mut noop),
        ) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("journaled replay failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        for (batch, outcome) in batches.iter().zip(&report.outcomes) {
            print_outcome(&topo, &batch_label(batch), outcome, verbose);
        }
        tally(
            &batches,
            &report.outcomes,
            &mut single_link_commits,
            &mut incremental_wins,
        );

        if report.crashed {
            // The crash-recovery drill: remember what the controller had
            // committed, kill it, rebuild from the journal, and demand
            // byte-for-byte reconvergence.
            let pre_rules = ctrl.committed().rules.clone();
            let pre_epoch = ctrl.committed().epoch;
            drop(ctrl);
            println!(
                "-- simulated crash after {} epoch(s); recovering from {path} --",
                report.outcomes.len()
            );
            let recovery = match recover(path, topo.clone(), policy, budget) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("recovery failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            ctrl = recovery.controller;
            if ctrl.committed().rules != pre_rules || ctrl.committed().epoch != pre_epoch {
                eprintln!(
                    "FAIL: recovery diverged (epoch {} vs {}, tables {})",
                    ctrl.committed().epoch,
                    pre_epoch,
                    if ctrl.committed().rules == pre_rules {
                        "equal"
                    } else {
                        "DIFFER"
                    }
                );
                return ExitCode::FAILURE;
            }
            let repaired = ctrl.reconcile(southbound.as_mut());
            println!(
                "recovered: {} event(s) replayed, committed tables byte-identical \
                 (epoch {}); reconcile repaired {} switch(es); {} tail event(s)",
                recovery.replayed,
                ctrl.committed().epoch,
                repaired,
                recovery.tail.len(),
            );
            // Finish the interrupted work: the journaled-but-unresolved
            // tail (which is exactly the batch in flight at the crash)
            // plus everything after it.
            let tail_refs: Vec<&CtrlEvent> = recovery.tail.iter().collect();
            let processed = report.outcomes.len() + 1;
            let rest: Vec<&CtrlEvent> = batches[processed.min(batches.len())..]
                .iter()
                .flat_map(|b| b.iter().copied())
                .collect();
            let remaining: Vec<CtrlEvent> = tail_refs
                .iter()
                .chain(rest.iter())
                .map(|&e| e.clone())
                .collect();
            match ctrl.replay_damped_via_observed(
                remaining.iter(),
                southbound.as_mut(),
                &install_policy,
                obs(&mut audit, &mut noop),
            ) {
                Ok(outcomes) => {
                    let rrefs: Vec<&CtrlEvent> = remaining.iter().collect();
                    let rbatches = coalesce_flaps(&rrefs);
                    for (batch, outcome) in rbatches.iter().zip(&outcomes) {
                        print_outcome(&topo, &batch_label(batch), outcome, verbose);
                    }
                    tally(
                        &rbatches,
                        &outcomes,
                        &mut single_link_commits,
                        &mut incremental_wins,
                    );
                }
                Err(e) => {
                    eprintln!("post-recovery replay failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    } else {
        match ctrl.replay_damped_via_observed(
            events.iter(),
            southbound.as_mut(),
            &install_policy,
            obs(&mut audit, &mut noop),
        ) {
            Ok(outcomes) => {
                for (batch, outcome) in batches.iter().zip(&outcomes) {
                    print_outcome(&topo, &batch_label(batch), outcome, verbose);
                }
                tally(
                    &batches,
                    &outcomes,
                    &mut single_link_commits,
                    &mut incremental_wins,
                );
            }
            Err(e) => {
                eprintln!("replay failed: {e}");
                failed = true;
            }
        }
    }

    println!();
    print!("{}", ctrl.metrics().report());
    if let Some(a) = &audit {
        print!("{}", a.auditor.metrics.report());
    }
    if let Some(path) = flags.get("export-checkpoint") {
        let snap = ctrl.committed();
        let text = checkpoint::render(&config, snap.epoch, &topo, &snap.rules);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("cannot write checkpoint {path}: {e}");
            failed = true;
        } else {
            println!("exported epoch {} checkpoint to {path}", snap.epoch);
        }
    }

    // The invariant the southbound layer exists for: whatever faults
    // were injected, the fleet runs exactly the committed tables.
    if southbound.fleet() != &ctrl.committed().rules {
        eprintln!("FAIL: fleet diverged from the committed tables");
        failed = true;
    }
    let m = ctrl.metrics();
    if m.verify_failures > 0 {
        eprintln!(
            "FAIL: {} committed epoch(s) required verify rollbacks",
            m.verify_failures
        );
        failed = true;
    }
    if let Some(a) = &audit {
        if a.violations > 0 {
            eprintln!(
                "FAIL: independent audit found violations in {} epoch(s)",
                a.violations
            );
            failed = true;
        }
    }
    if single_link_commits > 0 && incremental_wins < single_link_commits {
        eprintln!(
            "FAIL: only {incremental_wins}/{single_link_commits} single-link commits \
             beat a full-table reinstall"
        );
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
