//! `tagger-ctrld` — replay a control-plane event trace through the
//! incremental Tagger controller.
//!
//! Boots a [`tagger::ctrl::Controller`] for a 3-layer Clos, commits the
//! epoch-0 tagging, then feeds it the events from a plain-text trace
//! (see `examples/reroute.trace` for the format) and prints, per epoch,
//! what a real deployment would ship to switches: per-switch rule
//! deltas, their cost against a full-table reinstall, and the
//! verification verdict. Ends with the controller's metrics report.
//!
//! ```text
//! tagger-ctrld [trace-file] [--pods N] [--leaves N] [--tors N] [--spines N]
//!              [--hosts N] [--bounces K] [--tcam-budget N] [--verbose]
//! ```
//!
//! With no trace file, replays the canonical single-link flap
//! (down L1 T1, then up L1 T1) — the paper's reroute scenario.
//!
//! The process exits non-zero if any commit violates the incremental
//! promise (delta ops ≥ full reinstall ops for a single-link event) or
//! if any epoch fails verification, so the binary doubles as an
//! end-to-end check.

use std::collections::BTreeMap;
use std::process::ExitCode;

use tagger::ctrl::{parse_trace, Controller, CtrlEvent, ElpPolicy, EpochOutcome};
use tagger::topo::ClosConfig;

type Args = (Option<String>, BTreeMap<String, String>, bool);

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut flags = BTreeMap::new();
    let mut trace = None;
    let mut verbose = false;
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--verbose" {
            verbose = true;
            i += 1;
        } else if let Some(name) = a.strip_prefix("--") {
            if i + 1 < args.len() {
                flags.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                return Err(format!("--{name} wants a value"));
            }
        } else {
            trace = Some(a.clone());
            i += 1;
        }
    }
    Ok((trace, flags, verbose))
}

fn get(flags: &BTreeMap<String, String>, key: &str, default: usize) -> Result<usize, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} wants a number, got {v:?}")),
    }
}

fn setup(args: &[String]) -> Result<(Args, ClosConfig, ElpPolicy, Option<usize>), String> {
    let parsed = parse_args(args)?;
    let flags = &parsed.1;
    let config = ClosConfig {
        pods: get(flags, "pods", 2)?,
        leaves_per_pod: get(flags, "leaves", 2)?,
        tors_per_pod: get(flags, "tors", 2)?,
        spines: get(flags, "spines", 2)?,
        hosts_per_tor: get(flags, "hosts", 4)?,
    };
    let policy = ElpPolicy::with_bounces(get(flags, "bounces", 1)?);
    let budget = match flags.get("tcam-budget") {
        None => None,
        Some(_) => Some(get(flags, "tcam-budget", 0)?),
    };
    Ok((parsed, config, policy, budget))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ((trace_file, _, verbose), config, policy, budget) = match setup(&args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let topo = config.build();

    let text = match &trace_file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => "down L1 T1\nup L1 T1\n".to_string(),
    };
    let events = match parse_trace(&topo, &text) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let mut ctrl = match Controller::with_budget(topo.clone(), policy, budget) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bootstrap failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let epoch0 = ctrl.committed();
    println!(
        "epoch 0 (bootstrap): {} switches, {} links, {} ELP paths -> {} rules, \
         {} lossless priorities, worst-switch TCAM {}",
        topo.num_switches(),
        topo.num_links(),
        epoch0.elp_paths,
        epoch0.rules.num_rules(),
        epoch0.lossless_tags,
        epoch0.tcam_worst_switch,
    );

    let mut single_link_commits = 0usize;
    let mut incremental_wins = 0usize;
    let mut failed = false;
    for event in &events {
        let is_link_event = matches!(event, CtrlEvent::LinkDown(_) | CtrlEvent::LinkUp(_));
        match ctrl.handle(event) {
            Ok(EpochOutcome::Committed(report)) => {
                println!(
                    "epoch {} <- {}: committed in {:?}; {} ELP paths, {} lossless \
                     priorities, worst-switch TCAM {}",
                    report.epoch,
                    event.label(),
                    report.recompute,
                    report.elp_paths,
                    report.lossless_tags,
                    report.tcam_worst_switch,
                );
                println!(
                    "  deltas: {} switches touched, +{} -{} rules ({} ops vs {} for a \
                     full reinstall)",
                    report.switches_touched(),
                    report.rules_added,
                    report.rules_removed,
                    report.delta_ops(),
                    report.full_reinstall_ops(),
                );
                for delta in &report.deltas {
                    let line = format!(
                        "    {}: +{} -{}",
                        topo.node(delta.switch).name,
                        delta.add.len(),
                        delta.remove.len()
                    );
                    if verbose {
                        println!("{line}");
                        for r in &delta.remove {
                            println!(
                                "      - (tag {}, in {}, out {}) -> {}",
                                r.tag.0, r.in_port.0, r.out_port.0, r.new_tag.0
                            );
                        }
                        for r in &delta.add {
                            println!(
                                "      + (tag {}, in {}, out {}) -> {}",
                                r.tag.0, r.in_port.0, r.out_port.0, r.new_tag.0
                            );
                        }
                    } else {
                        println!("{line}");
                    }
                }
                if is_link_event && !report.deltas.is_empty() {
                    single_link_commits += 1;
                    if report.delta_ops() < report.full_reinstall_ops() {
                        incremental_wins += 1;
                    }
                }
            }
            Ok(EpochOutcome::RolledBack {
                abandoned_version,
                reason,
            }) => {
                println!(
                    "epoch {} <- {}: ROLLED BACK (view v{} abandoned): {}",
                    ctrl.committed().epoch + 1,
                    event.label(),
                    abandoned_version,
                    reason,
                );
            }
            Err(e) => {
                eprintln!("hard error on {}: {e}", event.label());
                failed = true;
                break;
            }
        }
    }

    println!();
    print!("{}", ctrl.metrics().report());

    let m = ctrl.metrics();
    if m.verify_failures > 0 {
        eprintln!(
            "FAIL: {} committed epoch(s) required verify rollbacks",
            m.verify_failures
        );
        failed = true;
    }
    if single_link_commits > 0 && incremental_wins < single_link_commits {
        eprintln!(
            "FAIL: only {incremental_wins}/{single_link_commits} single-link commits \
             beat a full-table reinstall"
        );
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
