//! `tagger-ingest` — the network ingest client for `tagger-fleetd
//! serve`, plus the self-contained chaos-proxy loopback drill CI runs.
//!
//! ```text
//! tagger-ingest send  [stream-file] --addr HOST:PORT --client N --seed S
//!                     [--attempts N] [--reconnects N] [--json]
//! tagger-ingest drill [--seed S] [--fabrics N] [--events N] [--dir PATH]
//! ```
//!
//! **send** delivers an interleaved `<fabric>: <trace-line>` stream
//! (file or stdin) to a running `tagger-fleetd serve` over the DESIGN
//! §15 framed protocol: strict in-order delivery, seeded
//! backoff + jitter on `Backpressure`, bounded reconnects, exactly-once
//! at the fabric queue via the per-client sequence handshake. Prints a
//! one-line delivery summary (and, with `--json`, the byte-stable
//! delivery report — only outcome fields, no timing-dependent
//! counters). Exits non-zero if any line was permanently rejected.
//!
//! **drill** is the acceptance gate for the whole stack, in one
//! process: it starts an in-process server (chaotic southbound), wires
//! a fault-injecting `ChaosTransport` proxy in front of it
//! (disconnects, duplicates, mid-frame truncation, delays — all drawn
//! from the pinned seed), drives the full multi-fabric
//! scenario-schedule mix through the proxy from one client thread per
//! fabric, then replays the identical lines through a solo in-process
//! fleet and compares write-ahead journals **byte for byte**. Stdout is
//! deterministic at a fixed seed (CI runs the drill twice and `cmp`s
//! the outputs); timing-dependent transport counters go to stderr.
//! Exits non-zero on any lost, double-applied or rejected event, or any
//! journal divergence.

use std::collections::BTreeMap;
use std::io::BufRead;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use tagger::ctrl::{ChaosConfig, CtrlEvent};
use tagger::fleet::net::{
    chaos_for, send_lines, ChaosTransport, ClientConfig, NetChaosConfig, ServeConfig, Server,
};
use tagger::fleet::{Damping, FabricSpec, Fleet, FleetConfig};
use tagger::topo::{ClosConfig, Topology};

const USAGE: &str = "usage: tagger-ingest <send|drill> [options]
  send  [stream-file] --addr HOST:PORT --client N --seed S
        --attempts N --reconnects N [--json]
  drill --seed S --fabrics N --events N --dir PATH";

fn parse_args(args: &[String]) -> Result<(Option<String>, BTreeMap<String, String>), String> {
    let mut flags = BTreeMap::new();
    let mut positional = None;
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--json" {
            flags.insert("json".to_string(), String::new());
            i += 1;
        } else if let Some(name) = a.strip_prefix("--") {
            if i + 1 < args.len() {
                flags.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                return Err(format!("--{name} wants a value"));
            }
        } else {
            positional = Some(a.clone());
            i += 1;
        }
    }
    Ok((positional, flags))
}

fn get<T: std::str::FromStr>(
    flags: &BTreeMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} wants a {}, got {v:?}", std::any::type_name::<T>())),
    }
}

fn run_send(stream: Option<String>, flags: &BTreeMap<String, String>) -> Result<ExitCode, String> {
    let Some(addr) = flags.get("addr").cloned() else {
        return Err("send wants --addr HOST:PORT (a running `tagger-fleetd serve`)".into());
    };
    let mut cfg = ClientConfig::new(addr, get(flags, "client", 1u64)?);
    cfg.seed = get(flags, "seed", cfg.client_id)?;
    cfg.max_attempts = get(flags, "attempts", cfg.max_attempts)?.max(1);
    cfg.max_reconnects = get(flags, "reconnects", cfg.max_reconnects)?;

    let text = match &stream {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
        }
        None => {
            let mut buf = String::new();
            for line in std::io::stdin().lock().lines() {
                buf.push_str(&line.map_err(|e| e.to_string())?);
                buf.push('\n');
            }
            buf
        }
    };
    let lines: Vec<String> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect();
    if lines.is_empty() {
        return Err("nothing to send: the stream has no event lines".into());
    }

    let report = send_lines(&cfg, &lines).map_err(|e| e.to_string())?;
    println!("{}", report.render());
    for r in &report.rejections {
        println!("  rejected line {}: {}", r.index + 1, r.reason);
    }
    if flags.contains_key("json") {
        print!("{}", report.stable_json());
    }
    Ok(if report.rejections.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

/// SplitMix64 — the same per-fabric seed derivation the in-process soak
/// and the loopback soak test use, so the drill pins identical streams.
fn fabric_seed(master: u64, i: u64) -> u64 {
    let mut z = master.wrapping_add(i.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a byte slice — the journal fingerprint the drill prints.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// One fabric's schedule as `<fabric>: <trace-line>` wire lines, drawn
/// from the scenario mix library exactly like the fleet soak.
fn fabric_lines(
    topo: &Topology,
    name: &str,
    seed: u64,
    mix_index: usize,
    events: usize,
) -> Vec<String> {
    let mixes = tagger::scenario::schedule::library();
    let mix = &mixes[mix_index % mixes.len()];
    tagger::scenario::schedule::events(mix, topo, seed, events)
        .iter()
        .map(|e: &CtrlEvent| format!("{name}: {}", e.trace_line(topo)))
        .collect()
}

/// Replays every fabric's lines through a solo in-process fleet
/// configured identically to the drill server — the byte-equality
/// baseline.
fn solo_replay(
    dir: &PathBuf,
    topo: &Topology,
    base_chaos: &ChaosConfig,
    lines: &[Vec<String>],
) -> Result<(), String> {
    let mut cfg = FleetConfig::new(dir);
    cfg.queue_cap = 1024;
    cfg.drain_quantum = 4;
    let mut fleet = Fleet::new(cfg);
    for (i, fabric_lines) in lines.iter().enumerate() {
        let name = format!("net-{i}");
        fleet
            .register(
                FabricSpec::new(&name, topo.clone())
                    .with_damping(Damping::Flap)
                    .with_chaos(chaos_for(base_chaos, &name)),
            )
            .map_err(|e| format!("solo register {name}: {e}"))?;
        for line in fabric_lines {
            let rest = line
                .split_once(':')
                .map(|(_, r)| r.trim())
                .ok_or_else(|| format!("malformed drill line {line:?}"))?;
            fleet
                .ingest_line(&name, rest)
                .map_err(|e| format!("solo ingest {name}: {e}"))?;
        }
    }
    fleet
        .drain_all()
        .map(|_| ())
        .map_err(|e| format!("solo drain: {e}"))
}

fn run_drill(flags: &BTreeMap<String, String>) -> Result<ExitCode, String> {
    let seed = get(flags, "seed", 0xC0FFEEu64)?;
    let fabrics = get(flags, "fabrics", 8usize)?.max(1);
    let events = get(flags, "events", 24usize)?.max(1);
    let keep_dir = flags.get("dir").map(PathBuf::from);
    let base = keep_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("tagger-ingest-drill-{}", std::process::id()))
    });
    let dir_net = base.join("net");
    let dir_solo = base.join("solo");
    std::fs::remove_dir_all(&dir_net).ok();
    std::fs::remove_dir_all(&dir_solo).ok();

    let topo = ClosConfig::small().build();
    let base_chaos = ChaosConfig::new(seed, 0.25);
    let lines: Vec<Vec<String>> = (0..fabrics)
        .map(|i| {
            fabric_lines(
                &topo,
                &format!("net-{i}"),
                fabric_seed(seed, i as u64),
                i,
                events,
            )
        })
        .collect();

    println!(
        "tagger-ingest: drill seed {seed:#x}, {fabrics} fabrics, \
         ~{events} events each, chaos proxy armed"
    );

    // The networked leg: server with a chaotic southbound, behind a
    // fault-injecting transport proxy.
    let mut serve = ServeConfig::new(&dir_net, topo.clone());
    serve.chaos = Some(base_chaos);
    serve.drain_interval = Duration::from_millis(2);
    let server = Server::start("127.0.0.1:0", serve).map_err(|e| e.to_string())?;
    let proxy_cfg = NetChaosConfig {
        seed: seed ^ 0x7A05,
        disconnect_rate: 0.02,
        duplicate_rate: 0.05,
        truncate_rate: 0.02,
        delay_rate: 0.05,
        max_delay_ms: 3,
    }
    .clamped();
    let proxy = ChaosTransport::start(server.addr(), proxy_cfg).map_err(|e| e.to_string())?;
    let proxy_addr = proxy.addr().to_string();

    let handles: Vec<_> = lines
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, fabric_lines)| {
            let addr = proxy_addr.clone();
            std::thread::spawn(move || {
                let mut cfg = ClientConfig::new(addr, i as u64 + 1);
                cfg.seed = fabric_seed(seed ^ 0xC11E, i as u64);
                cfg.max_attempts = 128;
                cfg.max_reconnects = 64;
                cfg.reply_timeout = Duration::from_millis(300);
                send_lines(&cfg, &fabric_lines)
            })
        })
        .collect();
    let mut reports = Vec::new();
    for (i, h) in handles.into_iter().enumerate() {
        let report = h
            .join()
            .map_err(|_| format!("client thread net-{i} panicked"))?
            .map_err(|e| format!("client net-{i}: {e}"))?;
        reports.push(report);
    }
    let faults = proxy.stats().faults();
    proxy.shutdown();
    let outcome = server.shutdown().map_err(|e| e.to_string())?;

    // Timing-dependent figures are real but not reproducible — stderr.
    eprintln!(
        "drill transport: {faults} faults injected, {} reconnects, \
         {} backpressure hits, {} resends",
        reports.iter().map(|r| r.reconnects).sum::<u64>(),
        reports.iter().map(|r| r.backpressure_hits).sum::<u64>(),
        reports.iter().map(|r| r.resends).sum::<u64>(),
    );
    if faults == 0 {
        return Err("chaos proxy injected no faults at this seed; the drill proved nothing".into());
    }

    // The solo leg, then the verdicts.
    solo_replay(&dir_solo, &topo, &base_chaos, &lines)?;
    let mut failed = false;
    for (i, report) in reports.iter().enumerate() {
        let name = format!("net-{i}");
        let status = outcome.report.fabrics.iter().find(|f| f.name == name);
        let ingested = status.map(|s| s.ingested).unwrap_or(0);
        let offered = lines[i].len() as u64;
        let networked = std::fs::read(dir_net.join(format!("{name}.journal"))).unwrap_or_default();
        let solo = std::fs::read(dir_solo.join(format!("{name}.journal"))).unwrap_or_default();
        let journals_match = !networked.is_empty() && networked == solo;
        let exact =
            report.delivered == offered && report.rejections.is_empty() && ingested == offered;
        println!(
            "fabric {name}: offered {offered} delivered {} rejected {} \
             ingested {ingested} journal {} bytes fnv64 {:#018x} [{}]",
            report.delivered,
            report.rejections.len(),
            networked.len(),
            fnv64(&networked),
            if exact && journals_match {
                "ok"
            } else {
                "FAIL"
            },
        );
        if !exact {
            eprintln!("fabric {name}: events lost, double-applied or rejected");
            failed = true;
        }
        if !journals_match {
            eprintln!("fabric {name}: journal differs from the solo replay");
            failed = true;
        }
    }
    if !outcome.report.healthy() {
        eprintln!(
            "drill: fleet unhealthy after shutdown\n{}",
            outcome.report.render()
        );
        failed = true;
    }

    if keep_dir.is_none() {
        std::fs::remove_dir_all(&base).ok();
    }
    if failed {
        println!("drill: FAILED");
        Ok(ExitCode::from(1))
    } else {
        println!(
            "drill: {fabrics}/{fabrics} fabrics delivered exactly-once; \
             journals byte-identical to solo replay"
        );
        Ok(ExitCode::SUCCESS)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "send" => parse_args(&args[1..]).and_then(|(stream, flags)| run_send(stream, &flags)),
        "drill" => parse_args(&args[1..]).and_then(|(_, flags)| run_drill(&flags)),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("tagger-ingest: {msg}");
            ExitCode::from(2)
        }
    }
}
