//! `tagger-fleetd` — the multi-fabric control-plane daemon.
//!
//! Hosts N independent Tagger fabrics in one process, each with its own
//! controller, write-ahead journal, (optionally chaotic) southbound and
//! independent audit loop, behind a bounded fair ingest front: events
//! arrive interleaved across fabrics, are batched per fabric by that
//! fabric's damping policy (never across fabrics), and drain in
//! round-robin with a bounded per-fabric quantum so one flapping fabric
//! cannot starve the rest.
//!
//! ```text
//! tagger-fleetd soak   [--fabrics N] [--seed S] [--events N]
//!                      [--fail-rate R] [--dir PATH] [--status] [--json]
//! tagger-fleetd ingest [stream-file] [--fabrics N] [--damping SPEC]
//!                      [--chaos seed=N,fail_rate=P,...] [--dir PATH]
//!                      [--quantum N] [--queue-cap N] [--json]
//! tagger-fleetd serve  [--addr HOST:PORT] [--damping SPEC]
//!                      [--chaos seed=N,fail_rate=P,...] [--dir PATH]
//!                      [--quantum N] [--queue-cap N] [--budget N] [--json]
//! ```
//!
//! **soak** runs the chaos-soak drill: `--fabrics` fabrics, each under a
//! distinct seeded event schedule *and* a distinct seeded southbound
//! fault schedule, interleaved through the ingest front. Every fabric
//! must end audit-certified, journal-recoverable, quarantine-consistent
//! and converged; the readiness report is byte-stable given `--seed`.
//! Exits non-zero if any fabric is not ready. `--status` also prints the
//! fleet status rollup; `--json` prints the deterministic JSON snapshot.
//!
//! **ingest** replays an interleaved multi-fabric event stream. Each
//! line is `<fabric>: <trace-line>` in the `tagger-ctrld` trace syntax
//! (`down L1 T1`, `flap L2 S1 3`, `watchdog L1 2 2`, `resync`, ...);
//! fabrics are registered on first mention (small Clos, `--damping`
//! policy, `--chaos` schedule with a per-fabric seed offset). Lines are
//! enqueued as they arrive and drained fairly every few lines, exactly
//! like the live daemon. A full queue is backpressure, not an error:
//! the replay drains a fair cycle and retries the line, and the
//! `pushback` column of the final report counts every
//! rejected-then-retried event. With no stream file, reads stdin.
//! Prints the fleet status (and `--json` snapshot) at end of stream;
//! exits non-zero if any fabric diverged or failed audit.
//!
//! **serve** is the same replay over a real socket (DESIGN §15): a
//! framed TCP front with per-client sequence dedupe, `Backpressure`
//! replies instead of drops, and a graceful drain-then-close shutdown.
//! Clients are `tagger-ingest` (or anything speaking the §15 frame
//! format). The daemon runs until stdin reaches EOF — `ctrl-D`, or the
//! harness closing the pipe — then drains every queue and journal and
//! prints the final fleet report.
//!
//! Journals land under `--dir` (default: a per-process temp directory),
//! one file per fabric; registering two fabrics whose journals would
//! collide is refused.

use std::collections::BTreeMap;
use std::io::BufRead;
use std::process::ExitCode;

use tagger::ctrl::ChaosConfig;
use tagger::fleet::net::{ServeConfig, Server};
use tagger::fleet::{Damping, FabricSpec, Fleet, FleetConfig, FleetError, SoakConfig};
use tagger::topo::ClosConfig;

const USAGE: &str = "usage: tagger-fleetd <soak|ingest|serve> [options]
  soak   --fabrics N --seed S --events N --fail-rate R --dir PATH [--status] [--json]
  ingest [stream-file] --fabrics N --damping none|flap|flap:N --chaos SPEC
         --dir PATH --quantum N --queue-cap N [--json]
  serve  --addr HOST:PORT --damping none|flap|flap:N --chaos SPEC
         --dir PATH --quantum N --queue-cap N --budget N [--json]";

fn parse_args(args: &[String]) -> Result<(Option<String>, BTreeMap<String, String>), String> {
    let mut flags = BTreeMap::new();
    let mut positional = None;
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--status" || a == "--json" {
            flags.insert(a[2..].to_string(), String::new());
            i += 1;
        } else if let Some(name) = a.strip_prefix("--") {
            if i + 1 < args.len() {
                flags.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                return Err(format!("--{name} wants a value"));
            }
        } else {
            positional = Some(a.clone());
            i += 1;
        }
    }
    Ok((positional, flags))
}

fn get<T: std::str::FromStr>(
    flags: &BTreeMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} wants a {}, got {v:?}", std::any::type_name::<T>())),
    }
}

fn default_dir() -> std::path::PathBuf {
    std::env::temp_dir().join(format!("tagger-fleetd-{}", std::process::id()))
}

fn run_soak_cmd(flags: &BTreeMap<String, String>) -> Result<ExitCode, String> {
    let dir = flags
        .get("dir")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(default_dir);
    let cfg = SoakConfig {
        fabrics: get(flags, "fabrics", 8)?,
        seed: get(flags, "seed", 1u64)?,
        events_per_fabric: get(flags, "events", 48)?,
        fail_rate: get(flags, "fail-rate", 0.25f64)?,
        dir: dir.clone(),
    };
    if cfg.fabrics == 0 {
        return Err("--fabrics must be at least 1".into());
    }
    println!(
        "tagger-fleetd: soaking {} fabrics ({} events each, chaos fail_rate {:.2}, seed {})",
        cfg.fabrics, cfg.events_per_fabric, cfg.fail_rate, cfg.seed
    );
    let outcome = tagger::fleet::run_soak(&cfg).map_err(|e| e.to_string())?;
    print!("{}", outcome.readiness.render());
    if flags.contains_key("status") {
        println!();
        print!("{}", outcome.snapshot.render());
    }
    if flags.contains_key("json") {
        print!("{}", outcome.snapshot.to_json());
    }
    if flags.get("dir").is_none() {
        std::fs::remove_dir_all(&dir).ok();
    }
    Ok(if outcome.readiness.all_ready() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn run_ingest(
    stream: Option<String>,
    flags: &BTreeMap<String, String>,
) -> Result<ExitCode, String> {
    let dir = flags
        .get("dir")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(default_dir);
    let damping = match flags.get("damping") {
        Some(spec) => Damping::parse(spec)?,
        None => Damping::Flap,
    };
    let chaos = flags
        .get("chaos")
        .map(|s| ChaosConfig::parse(s))
        .transpose()?;
    let mut fleet_cfg = FleetConfig::new(&dir);
    fleet_cfg.drain_quantum = get(flags, "quantum", 4usize)?.max(1);
    fleet_cfg.queue_cap = get(flags, "queue-cap", fleet_cfg.queue_cap)?.max(1);
    let mut fleet = Fleet::new(fleet_cfg);
    let topo = ClosConfig::small().build();

    let text = match &stream {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
        }
        None => {
            let mut buf = String::new();
            for line in std::io::stdin().lock().lines() {
                buf.push_str(&line.map_err(|e| e.to_string())?);
                buf.push('\n');
            }
            buf
        }
    };

    let mut lines = 0u64;
    let mut stalls = 0u64;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (fabric, rest) = line
            .split_once(':')
            .ok_or_else(|| format!("line {}: want '<fabric>: <event>'", lineno + 1))?;
        let fabric = fabric.trim();
        if fleet.fabric(fabric).is_err() {
            let mut spec = FabricSpec::new(fabric, topo.clone()).with_damping(damping);
            if let Some(base) = chaos {
                // Same rates for every fabric, but a per-fabric seed
                // offset so their fault schedules are independent.
                spec = spec.with_chaos(ChaosConfig {
                    seed: base.seed.wrapping_add(fleet.len() as u64),
                    ..base
                });
            }
            let id = fleet.register(spec).map_err(|e| e.to_string())?;
            println!(
                "registered fabric [{}] {fabric} (journal {})",
                id.0,
                fleet
                    .fabric(fabric)
                    .map_err(|e| e.to_string())?
                    .journal_path()
                    .display()
            );
        }
        // A full queue is backpressure, not a stream error: drain a
        // fair cycle to make room and retry the same line. `ingest_line`
        // is all-or-nothing, so a rejected line never half-lands and is
        // always safe to retry; the fabric counts each rejection in the
        // report's `pushback` column.
        loop {
            match fleet.ingest_line(fabric, rest.trim()) {
                Ok(_) => break,
                Err(FleetError::QueueFull { cap, .. }) => {
                    let queued = fleet.fabric(fabric).map_err(|e| e.to_string())?.queued();
                    if queued == 0 {
                        // The queue is empty and the line still does not
                        // fit: no amount of draining will ever admit it.
                        return Err(format!(
                            "line {}: the line expands past the {cap}-slot \
                             queue; raise --queue-cap",
                            lineno + 1,
                        ));
                    }
                    stalls += 1;
                    fleet.drain_cycle().map_err(|e| e.to_string())?;
                }
                Err(e) => return Err(format!("line {}: {e}", lineno + 1)),
            }
        }
        lines += 1;
        // Drain as the stream arrives, like the live daemon: a fair
        // cycle every few lines keeps every fabric making progress.
        if lines.is_multiple_of(8) {
            fleet.drain_cycle().map_err(|e| e.to_string())?;
        }
    }
    fleet.drain_all().map_err(|e| e.to_string())?;
    if stalls > 0 {
        println!("ingest: {stalls} events waited out a full queue (drained and retried)");
    }

    let report = fleet.snapshot();
    print!("{}", report.render());
    if flags.contains_key("json") {
        print!("{}", report.to_json());
    }
    Ok(if report.healthy() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn run_serve(flags: &BTreeMap<String, String>) -> Result<ExitCode, String> {
    let dir = flags
        .get("dir")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(default_dir);
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7077".to_string());
    let mut cfg = ServeConfig::new(&dir, ClosConfig::small().build());
    if let Some(spec) = flags.get("damping") {
        cfg.damping = Damping::parse(spec)?;
    }
    cfg.chaos = flags
        .get("chaos")
        .map(|s| ChaosConfig::parse(s))
        .transpose()?;
    cfg.queue_cap = get(flags, "queue-cap", cfg.queue_cap)?.max(1);
    cfg.drain_quantum = get(flags, "quantum", cfg.drain_quantum)?.max(1);
    cfg.conn_budget = get(flags, "budget", cfg.conn_budget)?.max(1);

    let server = Server::start(&addr, cfg).map_err(|e| e.to_string())?;
    println!(
        "tagger-fleetd: serving on {} (journals under {})",
        server.addr(),
        dir.display()
    );
    println!("tagger-fleetd: close stdin (ctrl-D) to drain and exit");

    // Run until the operator (or the harness driving us) closes stdin;
    // that is the graceful-stop signal, mirroring the stream commands.
    let mut sink = String::new();
    let stdin = std::io::stdin();
    loop {
        sink.clear();
        match stdin.lock().read_line(&mut sink) {
            Ok(0) => break,
            Ok(_) => continue,
            Err(e) => return Err(format!("stdin: {e}")),
        }
    }

    let outcome = server.shutdown().map_err(|e| e.to_string())?;
    print!("{}", outcome.report.render());
    if flags.contains_key("json") {
        print!("{}", outcome.report.to_json());
    }
    Ok(if outcome.report.healthy() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "soak" => parse_args(&args[1..]).and_then(|(_, flags)| run_soak_cmd(&flags)),
        "ingest" => parse_args(&args[1..]).and_then(|(stream, flags)| run_ingest(stream, &flags)),
        "serve" => parse_args(&args[1..]).and_then(|(_, flags)| run_serve(&flags)),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("tagger-fleetd: {msg}");
            ExitCode::from(2)
        }
    }
}
