//! `tagger-audit` — independently certify installed rule tables.
//!
//! The audit path trusts nothing the controller computed: it decompiles
//! the TCAM entries the tables compile to, rebuilds the buffer
//! dependency graph from the decompiled tuples and the link adjacency,
//! and re-proves Theorem 5.1 with its own machinery (see the
//! `tagger-audit` crate docs). Three subcommands:
//!
//! ```text
//! tagger-audit check <checkpoint> [--replay]
//! tagger-audit check --journal PATH [--pods N] [--leaves N] [--tors N]
//!                    [--spines N] [--hosts N] [--bounces K] [--tcam-budget N]
//! tagger-audit dump <checkpoint> [--out PATH]
//! tagger-audit whatif <checkpoint> [--fail A-B[,C-D...]] [--bounces K]
//! ```
//!
//! - `check` audits a checkpoint file (or a controller rebuilt from a
//!   write-ahead journal) and exits non-zero unless a certificate is
//!   issued. `--replay` additionally runs the generated counterexample
//!   flows through `tagger-sim` to demonstrate any deadlock found.
//! - `dump` writes the topology as Graphviz DOT, with the offending
//!   cycle highlighted in red when the audit fails.
//! - `whatif` audits hypothetical link failures against the committed
//!   tables: specific links via `--fail`, or every single switch-switch
//!   link when none are given.

use std::process::ExitCode;

use tagger::audit::{checkpoint, whatif, Auditor, Counterexample, DepGraph};
use tagger::core::RuleSet;
use tagger::ctrl::{recover, ElpPolicy};
use tagger::topo::{ClosConfig, FailureSet, Topology};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("usage: tagger-audit <check|dump|whatif> ...");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "check" => cmd_check(rest),
        "dump" => cmd_dump(rest),
        "whatif" => cmd_whatif(rest),
        other => Err(format!("unknown subcommand {other:?}")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// Positional + `--flag value` parsing (`--replay` is valueless).
fn parse(
    rest: &[String],
) -> Result<(Vec<String>, std::collections::BTreeMap<String, String>), String> {
    let mut positional = Vec::new();
    let mut flags = std::collections::BTreeMap::new();
    let mut i = 0;
    while i < rest.len() {
        let a = &rest[i];
        if a == "--replay" {
            flags.insert("replay".to_string(), String::new());
            i += 1;
        } else if let Some(name) = a.strip_prefix("--") {
            if i + 1 < rest.len() {
                flags.insert(name.to_string(), rest[i + 1].clone());
                i += 2;
            } else {
                return Err(format!("--{name} wants a value"));
            }
        } else {
            positional.push(a.clone());
            i += 1;
        }
    }
    Ok((positional, flags))
}

fn get(
    flags: &std::collections::BTreeMap<String, String>,
    key: &str,
    default: usize,
) -> Result<usize, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} wants a number, got {v:?}")),
    }
}

fn load_checkpoint(path: &str) -> Result<checkpoint::Checkpoint, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    checkpoint::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// The tables to audit: offline from a checkpoint, or live from a
/// journal-recovered controller.
fn load_tables(
    positional: &[String],
    flags: &std::collections::BTreeMap<String, String>,
) -> Result<(Topology, RuleSet, u64), String> {
    if let Some(journal_path) = flags.get("journal") {
        let config = ClosConfig {
            pods: get(flags, "pods", 2)?,
            leaves_per_pod: get(flags, "leaves", 2)?,
            tors_per_pod: get(flags, "tors", 2)?,
            spines: get(flags, "spines", 2)?,
            hosts_per_tor: get(flags, "hosts", 4)?,
        };
        let policy = ElpPolicy::with_bounces(get(flags, "bounces", 1)?);
        let budget = match flags.get("tcam-budget") {
            None => None,
            Some(_) => Some(get(flags, "tcam-budget", 0)?),
        };
        let topo = config.build();
        let recovery = recover(journal_path, topo.clone(), policy, budget)
            .map_err(|e| format!("recover {journal_path}: {e}"))?;
        let snapshot = recovery.controller.committed();
        println!(
            "recovered epoch {} from {journal_path} ({} event(s) replayed, {} in tail)",
            snapshot.epoch,
            recovery.replayed,
            recovery.tail.len()
        );
        Ok((topo, snapshot.rules.clone(), snapshot.epoch))
    } else {
        let Some(path) = positional.first() else {
            return Err("check wants a checkpoint file or --journal PATH".into());
        };
        let ckpt = load_checkpoint(path)?;
        Ok((ckpt.topo, ckpt.rules, ckpt.epoch))
    }
}

fn cmd_check(rest: &[String]) -> Result<ExitCode, String> {
    let (positional, flags) = parse(rest)?;
    let (topo, rules, epoch) = load_tables(&positional, &flags)?;
    let mut auditor = Auditor::new(topo.clone());
    let report = auditor.audit(epoch, &rules);
    print!("{}", report.render(&topo));
    if flags.contains_key("replay") {
        if let Some(cx) = &report.counterexample {
            let (sim_report, labels) = cx.replay(&topo, &rules, tagger::audit::REPLAY_END_NS);
            match &sim_report.deadlock {
                Some(d) => {
                    println!(
                        "replay: DEADLOCK at {} ns across {} buffer(s), {} flow(s) injected",
                        d.detected_at,
                        d.cycle.len(),
                        labels.len()
                    );
                }
                None => println!("replay: no deadlock within the horizon"),
            }
        } else {
            println!("replay: nothing to replay (no counterexample)");
        }
    }
    print!("{}", auditor.metrics.report());
    Ok(if report.is_certified() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_dump(rest: &[String]) -> Result<ExitCode, String> {
    let (positional, flags) = parse(rest)?;
    let Some(path) = positional.first() else {
        return Err("dump wants a checkpoint file".into());
    };
    let ckpt = load_checkpoint(path)?;
    let graph = DepGraph::build(&ckpt.topo, &ckpt.rules, &FailureSet::none());
    let kahn = graph.kahn();
    let dot = match graph.minimal_cycle(&kahn.residual) {
        Some(cycle) => {
            let cx =
                Counterexample::from_cycle(&ckpt.topo, &graph, cycle, tagger::audit::REPLAY_END_NS);
            eprintln!("cycle: {}", cx.describe(&ckpt.topo));
            cx.dot(&ckpt.topo)
        }
        None => ckpt.topo.to_dot(),
    };
    match flags.get("out") {
        Some(out) => {
            std::fs::write(out, &dot).map_err(|e| format!("cannot write {out}: {e}"))?;
            println!("wrote {out}");
        }
        None => print!("{dot}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_whatif(rest: &[String]) -> Result<ExitCode, String> {
    let (positional, flags) = parse(rest)?;
    let Some(path) = positional.first() else {
        return Err("whatif wants a checkpoint file".into());
    };
    let ckpt = load_checkpoint(path)?;
    let bounces = get(&flags, "bounces", 1)?;
    let scenarios = match flags.get("fail") {
        Some(spec) => {
            let mut failures = FailureSet::none();
            let mut names = Vec::new();
            for pair in spec.split(',') {
                let (a, b) = pair
                    .split_once('-')
                    .ok_or_else(|| format!("--fail wants A-B pairs, got {pair:?}"))?;
                failures
                    .try_fail_between(&ckpt.topo, a, b)
                    .map_err(|e| format!("--fail {pair}: {e}"))?;
                names.push(format!("{a}-{b}"));
            }
            vec![whatif::whatif(
                &ckpt.topo,
                &ckpt.rules,
                &failures,
                format!("fail {}", names.join(",")),
                bounces,
            )]
        }
        None => whatif::sweep_single_links(&ckpt.topo, &ckpt.rules, bounces),
    };
    let mut unsafe_scenarios = 0usize;
    for s in &scenarios {
        println!("{}", s.summarize());
        if !s.is_safe() {
            unsafe_scenarios += 1;
            for f in &s.findings {
                println!("  {}", f.describe(&ckpt.topo));
            }
        }
    }
    println!(
        "{} scenario(s), {} unsafe",
        scenarios.len(),
        unsafe_scenarios
    );
    Ok(if unsafe_scenarios == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
