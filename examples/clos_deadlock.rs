//! The paper's headline scenario (Figures 3 and 10): two rerouted flows
//! close a cyclic buffer dependency and freeze the fabric — unless
//! Tagger is deployed.
//!
//! Runs the packet-level simulation twice (without/with Tagger) and
//! prints the two flows' goodput over time.
//!
//! ```sh
//! cargo run --release --example clos_deadlock
//! ```

use tagger::sim::experiments::fig10_bounce_deadlock;

fn main() {
    const END_NS: u64 = 8_000_000; // 8 ms

    for with_tagger in [false, true] {
        let (report, labels) = fig10_bounce_deadlock(with_tagger, END_NS).run();
        println!(
            "=== {} Tagger ===",
            if with_tagger { "WITH" } else { "WITHOUT" }
        );
        match &report.deadlock {
            Some(d) => println!(
                "deadlock detected at t={} µs; witness cycle of {} gated queues",
                d.detected_at / 1_000,
                d.cycle.len()
            ),
            None => println!("no deadlock"),
        }
        for (flow, label) in report.flows.iter().zip(&labels) {
            println!(
                "{label}: delivered {:.1} MB, final rate {:.2} Gb/s{}",
                flow.delivered_bytes as f64 / 1e6,
                flow.tail_rate(5) / 1e9,
                if flow.stalled(5) { "  [FROZEN]" } else { "" }
            );
        }
        // A compact rate timeline (Gb/s per 100 µs sample).
        for (flow, label) in report.flows.iter().zip(&labels) {
            let spark: String = flow
                .rate_series
                .iter()
                .step_by(4)
                .map(|r| match (r / 1e9) as u64 {
                    0 => '.',
                    1..=9 => '▂',
                    10..=19 => '▄',
                    20..=29 => '▆',
                    _ => '█',
                })
                .collect();
            println!("{label:>16} |{spark}|");
        }
        println!();
    }
    println!("(each column = 400 µs; '.' means zero goodput)");
}
