//! Multiple lossless application classes sharing tags (paper §6).
//!
//! An operator running N lossless classes (e.g. RDMA data + congestion
//! notification) each tolerating M bounces would naively burn N·(M+1)
//! priorities — more than any ASIC has. Offset sharing gets away with
//! M + N: class c starts at tag 1+c and bumps on bounces; only bounced
//! packets ever mix with the next class.
//!
//! ```sh
//! cargo run --example multi_class
//! ```

use tagger::core::multiclass::MultiClass;
use tagger::core::Tag;
use tagger::topo::ClosConfig;

fn main() {
    let topo = ClosConfig::small().build();

    println!("classes N | bounces M | naive N(M+1) | shared M+N");
    for classes in 1..=4u16 {
        for bounces in 0..=2u16 {
            let mc = MultiClass { classes, bounces };
            println!(
                "{:>9} | {:>9} | {:>12} | {:>10}",
                classes,
                bounces,
                classes * (bounces + 1),
                mc.total_tags()
            );
        }
    }

    // Build and certify the 2-class, 1-bounce scheme the paper's example
    // suggests (data + CNP traffic).
    let mc = MultiClass {
        classes: 2,
        bounces: 1,
    };
    let tagging = mc.clos_tagging(&topo).expect("clos fabric");
    tagging.graph().verify().expect("deadlock-free");
    println!(
        "\n2 classes x 1 bounce: {} lossless priorities (naive would use 4)",
        tagging.num_lossless_tags_on(&topo)
    );
    for c in 0..2 {
        let (lo, hi) = mc.tag_range(c);
        println!(
            "  class {c}: injects tag {}, rides tags {lo}..={hi}",
            mc.initial_tag(c)
        );
    }
    // The isolation trade-off: which classes share tag 2?
    let shared = mc.classes_using(Tag(2));
    println!(
        "  tag 2 is shared by classes {shared:?}: only class-0 packets \
         that already bounced once mix with fresh class-1 traffic"
    );
}
