//! A transient routing loop must not take down the network (the paper's
//! Figure 11): a misconfigured route bounces packets between a ToR and a
//! Leaf. Without Tagger, the looping *lossless* packets form a cyclic
//! buffer dependency and an innocent flow through the same links freezes
//! forever — even though the loop's packets all die of TTL. With Tagger,
//! the loopers fall into the lossy class at the first hairpin and the
//! innocent flow never notices.
//!
//! ```sh
//! cargo run --release --example routing_loop
//! ```

use tagger::sim::experiments::fig11_routing_loop;

fn main() {
    const END_NS: u64 = 8_000_000;

    for with_tagger in [false, true] {
        let (report, labels) = fig11_routing_loop(with_tagger, END_NS).run();
        println!(
            "=== {} Tagger ===",
            if with_tagger { "WITH" } else { "WITHOUT" }
        );
        println!(
            "loop installed at t={} µs; deadlock: {}",
            END_NS / 5 / 1_000,
            match &report.deadlock {
                Some(d) => format!("YES at t={} µs", d.detected_at / 1_000),
                None => "no".to_string(),
            }
        );
        for (flow, label) in report.flows.iter().zip(&labels) {
            println!(
                "{label}: final rate {:.2} Gb/s, ttl-drops {}{}",
                flow.tail_rate(5) / 1e9,
                flow.ttl_drops,
                if flow.frozen(5) { "  [no goodput]" } else { "" }
            );
        }
        println!(
            "lossy drops {}, lossless drops {}\n",
            report.lossy_drops, report.lossless_drops
        );
    }
    println!(
        "F1's goodput is zero in both runs (its packets loop until TTL \
         death); the difference is F2: frozen without Tagger, untouched with."
    );
}
