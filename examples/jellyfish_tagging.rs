//! Tagger on an unstructured fabric: tag a Jellyfish topology with
//! shortest-path routing, the paper's Table 5 setting.
//!
//! Shows the generic pipeline (Algorithm 1 brute-force tagging, then
//! Algorithm 2 greedy merging), the deadlock-freedom certificate, and
//! the TCAM budget — a handful of priorities and entries even though the
//! topology is random.
//!
//! ```sh
//! cargo run --release --example jellyfish_tagging
//! ```

use tagger::core::tcam::{Compression, TcamProgram};
use tagger::core::{greedy_minimize, tag_by_hop_count, Elp, Tagging};
use tagger::topo::JellyfishConfig;

fn main() {
    let cfg = JellyfishConfig::half_servers(60, 12, 2026);
    let topo = cfg.build();
    println!(
        "jellyfish: {} switches x {} ports ({} network), {} servers",
        cfg.switches,
        cfg.ports_per_switch,
        cfg.network_degree,
        topo.num_hosts()
    );

    // ELP: one shortest path per ordered switch pair.
    let elp = Elp::shortest(&topo, 1, false);
    println!(
        "ELP: {} shortest paths, longest {} hops",
        elp.len(),
        elp.max_hops()
    );

    // Algorithm 1: one tag per hop index — correct but wasteful.
    let brute = tag_by_hop_count(&topo, &elp);
    println!(
        "algorithm 1: {} lossless priorities ({} graph nodes)",
        brute.num_lossless_tags(&topo),
        brute.num_nodes()
    );

    // Algorithm 2: greedy merging under the CBD-free constraint.
    let merged = greedy_minimize(&topo, &brute);
    println!(
        "algorithm 2: {} lossless priorities",
        merged.num_lossless_tags(&topo)
    );

    // The deployable artifact: verified rules via the full pipeline.
    let tagging = Tagging::from_elp(&topo, &elp).expect("pipeline");
    tagging.graph().verify().expect("deadlock-free");
    let tcam = TcamProgram::compile(&topo, tagging.rules(), Compression::Joint);
    println!(
        "deployed: {} priorities, {} rules (max {}/switch), {} TCAM entries (max {}/switch)",
        tagging.num_lossless_tags_on(&topo),
        tagging.rules().num_rules(),
        tagging.rules().max_rules_per_switch(),
        tcam.total_entries(),
        tcam.max_entries_per_switch()
    );
    if tagging.repairs() > 0 {
        println!(
            "(the merge needed {} determinization repair rules — see DESIGN.md)",
            tagging.repairs()
        );
    }
}
