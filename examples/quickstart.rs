//! Quickstart: tag a Clos fabric and prove it deadlock-free.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use tagger::core::tcam::{Compression, TcamProgram};
use tagger::prelude::*;

fn main() {
    // 1. The operator's fabric: a 3-layer Clos (the paper's Fig. 2).
    let topo = ClosConfig::small().build();
    println!(
        "fabric: {} switches, {} hosts, {} links",
        topo.num_switches(),
        topo.num_hosts(),
        topo.num_links()
    );

    // 2. The operator's intent: keep traffic lossless across up to one
    //    reroute — the ELP is all up-down paths plus all 1-bounce paths.
    let elp = Elp::updown_with_bounces(&topo, 1);
    println!("expected lossless paths: {}", elp.len());

    // 3. Tag it. The Clos-specific construction is optimal: k+1 = 2
    //    lossless priorities.
    let tagging = clos_tagging(&topo, 1).expect("layered fabric");
    println!(
        "lossless priorities: {}",
        tagging.num_lossless_tags_on(&topo)
    );

    // 4. Certify: no cyclic buffer dependency within any priority, tags
    //    only move forward (paper Theorem 5.1) — under *any* routing.
    tagging.graph().verify().expect("deadlock-free");
    // ... and every ELP path really rides lossless queues end to end.
    tagging
        .check_elp_lossless(&topo, &elp)
        .expect("ELP is lossless");
    println!("certified: deadlock-free and ELP-lossless");

    // 5. What the switches actually run: match-action rules, compressed
    //    into TCAM entries with port-bitmap masking (paper Fig. 9).
    let rules = tagging.rules();
    let tcam = TcamProgram::compile(&topo, rules, Compression::Joint);
    println!(
        "rules: {} exact-match entries -> {} TCAM entries (max {} per switch)",
        rules.num_rules(),
        tcam.total_entries(),
        tcam.max_entries_per_switch()
    );

    // 6. A packet that bounces more than once leaves the ELP and is
    //    demoted to the lossy class — it can never trigger PFC again.
    let l1 = topo.expect_node("L1");
    let s1 = topo.expect_node("S1");
    let s2 = topo.expect_node("S2");
    let in_p = topo.port_towards(l1, s1).unwrap();
    let out_p = topo.port_towards(l1, s2).unwrap();
    println!(
        "second bounce at L1 with tag 2: {:?}",
        rules.decide(l1, tagger::core::Tag(2), in_p, out_p)
    );
}
