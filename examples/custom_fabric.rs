//! Bring your own topology: parse a fabric from the plain-text spec
//! format, tag it, and certify deadlock freedom — the library side of
//! what `tagger-plan custom` does.
//!
//! ```sh
//! cargo run --example custom_fabric
//! ```

use tagger::core::{Elp, Tagging};
use tagger::topo::Topology;

const FABRIC: &str = "
# An asymmetric two-tier fabric with a cross-link between the ToRs —
# not a Clos, so up-down reasoning does not apply and the generic
# pipeline has to work for its money.
node S1 switch flat
node S2 switch flat
node T1 switch flat
node T2 switch flat
node T3 switch flat
node H1 host
node H2 host
node H3 host
node H4 host
link T1 S1
link T1 S2
link T2 S1
link T3 S2
link T1 T2            # the troublemaker: a lateral ToR-to-ToR link
link H1 T1
link H2 T2
link H3 T3
link H4 T3 10000000000 2000   # a slower, longer access link
";

fn main() {
    let topo = Topology::from_spec_text(FABRIC).expect("valid spec");
    println!(
        "parsed: {} switches, {} hosts, {} links",
        topo.num_switches(),
        topo.num_hosts(),
        topo.num_links()
    );

    // Host-to-host shortest-path ELP (all equal-cost paths).
    let elp = Elp::shortest(&topo, usize::MAX, true);
    println!(
        "ELP: {} shortest paths, longest {} hops",
        elp.len(),
        elp.max_hops()
    );

    let tagging = Tagging::from_elp(&topo, &elp).expect("pipeline");
    tagging.graph().verify().expect("deadlock-free");
    tagging.check_elp_lossless(&topo, &elp).expect("lossless");
    println!(
        "tagged: {} lossless priorities, {} rules (max {}/switch), {} repairs",
        tagging.num_lossless_tags_on(&topo),
        tagging.rules().num_rules(),
        tagging.rules().max_rules_per_switch(),
        tagging.repairs()
    );

    // Round-trip the spec to show the emitter.
    let text = topo.to_spec_text();
    let again = Topology::from_spec_text(&text).expect("round trip");
    assert_eq!(again.num_links(), topo.num_links());
    println!("\nspec round-trips; emitted form:\n{text}");
}
