//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the tiny slice of `rand`'s API it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), uniform range sampling and
//! unit-interval floats ([`RngExt`]), and Fisher–Yates shuffling
//! ([`seq::SliceRandom`]). The generator is xoshiro256++ seeded through
//! SplitMix64 — the same construction the real `StdRng` family uses for
//! seeding — so streams are well distributed and reproducible, though not
//! bit-identical to upstream `rand`.
#![forbid(unsafe_code)]

/// A source of random 64-bit words. Everything else is derived from this.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it to the full
    /// state via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// xoshiro256++: fast, 256-bit state, passes BigCrush.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' guidance.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable uniformly from the generator's full output range.
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u128 + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, blanket-implemented for every generator
/// (the `Rng` extension trait of upstream `rand`).
pub trait RngExt: RngCore {
    /// A uniform draw from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// A uniform draw over `T`'s standard distribution (`[0, 1)` for
    /// floats, the full range for integers).
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{RngCore, RngExt};

    /// In-place slice shuffling.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::{rngs::StdRng, RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
