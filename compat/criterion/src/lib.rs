//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the bench harness is
//! vendored: same macro/API surface (`criterion_group!`, `criterion_main!`,
//! [`Criterion::benchmark_group`], [`Bencher::iter`]), but measurement is a
//! simple best-of-N wall-clock timing printed to stdout — no statistics,
//! plots or saved baselines.
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs the closure under timing.
pub struct Bencher {
    /// Best observed per-iteration time, in nanoseconds.
    best_ns: u128,
}

impl Bencher {
    /// Times `f` over a few iterations, keeping the fastest.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        const ITERS: u32 = 3;
        for _ in 0..ITERS {
            let start = Instant::now();
            black_box(f());
            let ns = start.elapsed().as_nanos();
            self.best_ns = self.best_ns.min(ns);
        }
    }
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Parameter-only id (the group supplies the name).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        run_one(&id.to_string(), f);
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in always runs a fixed
    /// small iteration count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut b = Bencher { best_ns: u128::MAX };
    f(&mut b);
    if b.best_ns == u128::MAX {
        println!("bench {label:50} (no measurement)");
    } else {
        println!("bench {label:50} {:>12} ns/iter (best of 3)", b.best_ns);
    }
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
