//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API this workspace uses — the
//! [`Strategy`] trait with `prop_map`, range/tuple/collection strategies,
//! `prop_oneof!`, `any::<T>()`, and the `proptest!` / `prop_assert*` /
//! `prop_assume!` macros — over a deterministic per-case RNG. Unlike the
//! real crate there is no shrinking: a failing case reports its case
//! number and message, which is reproducible because case seeds are fixed.
#![forbid(unsafe_code)]

use std::marker::PhantomData;

/// Deterministic per-case random source (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    x: u64,
}

impl TestRng {
    /// The fixed generator for case number `case` of a test. Every run
    /// replays identical inputs, so failures are reproducible without
    /// persisted seeds.
    pub fn for_case(case: u32) -> TestRng {
        TestRng {
            x: 0xDEAD_BEEF_F00D_u64 ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.x = self.x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Why a test case did not pass: a real failure, or an unmet
/// `prop_assume!` precondition (the case is skipped, not failed).
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// Assertion failure with its message.
    Fail(String),
    /// `prop_assume!` rejected the inputs.
    Reject,
}

/// Runner configuration; only the case count is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of one type.
///
/// Object-safe: the combinators are `Self: Sized`, so
/// `Box<dyn Strategy<Value = V>>` works (see [`BoxedStrategy`]).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates with a strategy derived from each drawn value.
    fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// The result of [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;

    fn sample(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A type-erased strategy, cheap to clone (used by [`prop_oneof!`]).
#[derive(Clone)]
pub struct BoxedStrategy<V>(std::rc::Rc<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample(rng)
    }
}

/// Uniform choice among boxed alternatives — the engine of
/// [`prop_oneof!`].
#[derive(Clone)]
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// Chooses uniformly among `alternatives`.
    ///
    /// # Panics
    /// Panics if `alternatives` is empty.
    pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one arm"
        );
        Union(alternatives)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[i].sample(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draws from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<T>);

/// The canonical whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u128 + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_strategies!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategies {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
    (A, B, C, D, E, F, G);
    (A, B, C, D, E, F, G, H);
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A `Vec` strategy with length drawn from `len` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Defines `#[test]` functions running a body over random strategy draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{$cfg; $($rest)*}
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{$crate::ProptestConfig::default(); $($rest)*}
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut rng = $crate::TestRng::for_case(case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case #{case} failed: {msg}");
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// `assert_ne!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{} (both {:?})",
                format!($($fmt)+),
                l
            )));
        }
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Any,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps(x in 3usize..10, y in (0u16..5).prop_map(|v| v * 2)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y % 2 == 0 && y < 10);
        }

        #[test]
        fn tuples_vectors_and_oneof(
            pair in (0u32..4, 1u64..9),
            v in crate::collection::vec(0u8..3, 1..20),
            z in prop_oneof![Just(1u8), 5u8..7],
        ) {
            prop_assert!(pair.0 < 4);
            prop_assert!((1..9).contains(&pair.1));
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(z == 1 || z == 5 || z == 6, "z = {z}");
        }

        #[test]
        fn assume_skips(x in 0u8..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
