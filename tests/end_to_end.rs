//! End-to-end integration: topology → routing → tagging → rules →
//! simulation, crossing every crate boundary.

use tagger::core::clos::clos_tagging;
use tagger::core::{Elp, Tag, TagDecision, Tagging};
use tagger::routing::{updown_paths_between, Fib, Path};
use tagger::sim::{FlowSpec, SimConfig, Simulator};
use tagger::switch::SwitchConfig;
use tagger::topo::{ClosConfig, FailureSet, JellyfishConfig};

/// The full product promise on a Clos fabric: build, tag, certify,
/// simulate with failures, stay deadlock-free and lossless.
#[test]
fn clos_full_stack_with_reroute() {
    let topo = ClosConfig::small().build();
    let tagging = clos_tagging(&topo, 1).expect("clos");
    tagging.graph().verify().expect("certified");

    // The ELP covers reroutes: check against paths computed under an
    // actual failure.
    let mut failures = FailureSet::none();
    failures.fail_between(&topo, "L1", "T1");
    let h9 = topo.expect_node("H9");
    let h1 = topo.expect_node("H1");
    let rerouted = tagger::routing::bounce_paths_between(&topo, &failures, h9, h1, 1);
    assert!(!rerouted.is_empty());
    tagging
        .check_elp_lossless(&topo, &Elp::from_paths(rerouted))
        .expect("rerouted paths stay lossless");

    // Simulate a bouncing flow under the tagging: no deadlock, no
    // lossless drops, flow makes progress.
    let fib = Fib::shortest_path(&topo, &failures);
    let cfg = SimConfig {
        switch: SwitchConfig {
            num_lossless: 2,
            ..SwitchConfig::default()
        },
        end_time_ns: 2_000_000,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(topo.clone(), fib, Some(tagging.rules().clone()), cfg);
    let bounce_path: Vec<_> = ["H9", "T3", "L3", "S2", "L1", "S1", "L2", "T1", "H1"]
        .iter()
        .map(|n| topo.expect_node(n))
        .collect();
    let f = sim.add_flow(FlowSpec::new(h9, h1, 0).pinned(bounce_path));
    let report = sim.run();
    assert!(report.deadlock.is_none());
    assert_eq!(report.lossless_drops, 0);
    assert!(report.flows[f as usize].delivered_bytes > 1_000_000);
}

/// The generic pipeline ports to FatTree unchanged.
#[test]
fn fat_tree_pipeline() {
    let topo = tagger::topo::fat_tree(4);
    let tagging = clos_tagging(&topo, 1).expect("fat tree is layered");
    assert_eq!(tagging.num_lossless_tags_on(&topo), 2);
    tagging.graph().verify().unwrap();

    // And the generic algorithm agrees on the up-down ELP.
    let elp = Elp::updown(&topo);
    let generic = Tagging::from_elp(&topo, &elp).unwrap();
    assert_eq!(generic.num_lossless_tags_on(&topo), 1);
}

/// Jellyfish end to end: random topology, shortest-path ELP, few tags,
/// certified, and ELP-lossless.
#[test]
fn jellyfish_pipeline() {
    let topo = JellyfishConfig::half_servers(40, 10, 11).build();
    let elp = Elp::shortest(&topo, 2, false);
    let tagging = Tagging::from_elp(&topo, &elp).unwrap();
    assert!(tagging.num_lossless_tags_on(&topo) <= 3);
    assert!(!tagging.used_fallback());
    tagging.graph().verify().unwrap();
    tagging.check_elp_lossless(&topo, &elp).unwrap();
}

/// Tags must be monotone along every ELP path under the compiled rules,
/// and the per-hop decisions must agree with the closure graph.
#[test]
fn rules_are_monotone_along_paths() {
    let topo = ClosConfig::small().build();
    let elp = Elp::updown_with_bounces_capped(&topo, 1, 8);
    let tagging = Tagging::from_elp(&topo, &elp).unwrap();
    for path in elp.paths() {
        let ingresses: Vec<_> = path.ingress_ports(&topo).collect();
        let mut tag = Tag(1);
        for pair in ingresses.windows(2) {
            let egress = topo.peer_of(pair[1]).unwrap();
            match tagging
                .rules()
                .decide(pair[0].node, tag, pair[0].port, egress.port)
            {
                TagDecision::Lossless(next) => {
                    assert!(next >= tag, "tag decreased along {}", path.display(&topo));
                    tag = next;
                }
                TagDecision::Lossy => panic!("ELP path demoted: {}", path.display(&topo)),
            }
        }
    }
}

/// The vanilla (no-Tagger) deployment deadlocks on the bounce scenario;
/// the exact same simulation inputs with Tagger rules do not. This is
/// the paper's whole point, exercised across all five crates.
#[test]
fn tagger_is_the_difference_between_deadlock_and_not() {
    use tagger::sim::experiments::fig10_bounce_deadlock;
    let (without, _) = fig10_bounce_deadlock(false, 4_000_000).run();
    let (with, _) = fig10_bounce_deadlock(true, 4_000_000).run();
    assert!(without.deadlock.is_some());
    assert!(with.deadlock.is_none());
    assert_eq!(without.stalled_flows(5), 2);
    assert_eq!(with.stalled_flows(5), 0);
}

/// Up-down paths between any two hosts are consistent across the
/// routing and core crates' notions of bounces.
#[test]
fn routing_and_core_agree_on_updown() {
    let topo = ClosConfig::small().build();
    let failures = FailureSet::none();
    let h1 = topo.expect_node("H1");
    let h9 = topo.expect_node("H9");
    let paths = updown_paths_between(&topo, &failures, h1, h9);
    assert!(!paths.is_empty());
    // An up-down ELP merges to a single tag (no CBD).
    let merged = tagger::core::minimize_elp(&topo, &Elp::from_paths(paths));
    assert_eq!(merged.num_lossless_tags(&topo), 1);
}

/// The complete safety-net loop across every layer: the audit finds the
/// cycle in the corrupted checkpoint, the simulator shows it deadlock
/// and the armed watchdog rescue it, the trips become controller
/// quarantine events that journal through a crash, and the corrective
/// commit re-certifies deadlock-free.
#[test]
fn watchdog_safety_net_closes_the_loop() {
    use tagger::audit::{checkpoint, Auditor, REPLAY_END_NS};
    use tagger::ctrl::{
        recover, Controller, ElpPolicy, EpochOutcome, InstallPolicy, Journal, ReliableSouthbound,
        Southbound as _,
    };
    use tagger::sim::experiments::{quarantine_events, watchdog_rescue};
    use tagger::switch::WatchdogConfig;

    // 1. Audit the corrupted tables: violation + replayable cycle.
    let ckpt = checkpoint::parse(include_str!("../examples/corrupted.ckpt")).unwrap();
    let topo = ckpt.topo.clone();
    let audit = Auditor::new(topo.clone()).audit(ckpt.epoch, &ckpt.rules);
    assert!(!audit.is_certified());
    let cx = audit.counterexample.expect("cycle counterexample");

    // 2. Without the watchdog the counterexample deadlocks for good.
    let (baseline, _) =
        watchdog_rescue(&topo, &ckpt.rules, cx.flows.clone(), None, REPLAY_END_NS).run();
    assert!(baseline.deadlock.is_some(), "baseline must deadlock");

    // 3. Armed, the confirmed cycle trips and clears within two windows.
    let cfg = WatchdogConfig::with_window(200_000);
    let (report, _) = watchdog_rescue(
        &topo,
        &ckpt.rules,
        cx.flows.clone(),
        Some(cfg),
        REPLAY_END_NS,
    )
    .run();
    let wd = report.watchdog.clone().expect("watchdog report");
    assert!(wd.stats.trips >= 1);
    let first = wd.first_trip_at.unwrap();
    let cleared = wd.cleared_at.expect("cycle must clear");
    assert!(cleared - first <= 2 * cfg.window_ns);

    // 4. Trips -> quarantines -> a journaled controller that crashes
    // after the first corrective epoch and recovers the quarantine.
    let events = quarantine_events(&report);
    assert!(!events.is_empty(), "trips must map to quarantine events");
    let policy = ElpPolicy::with_bounces(1);
    let mut ctrl = Controller::with_budget(topo.clone(), policy, None).unwrap();
    let mut sb = ReliableSouthbound::new();
    sb.bootstrap(&ctrl.committed().rules);
    let install = InstallPolicy::default();
    let jpath = std::env::temp_dir().join("tagger-e2e-watchdog.journal");
    let jpath = jpath.to_str().unwrap();
    let mut journal = Journal::create(jpath).unwrap();
    let drive = journal
        .drive(&mut ctrl, &events, &mut sb, &install, 1, Some(1))
        .unwrap();
    let EpochOutcome::Committed(corrective) = &drive.outcomes[0] else {
        panic!("quarantine must commit, got {:?}", drive.outcomes[0]);
    };
    assert!(
        !corrective.deltas.is_empty(),
        "quarantine must stage a corrective delta"
    );
    let pre_quarantines = ctrl.state().quarantines.clone();
    assert!(!pre_quarantines.is_empty());
    drop(ctrl); // crash

    let rec = recover(jpath, topo.clone(), policy, None).unwrap();
    let mut ctrl = rec.controller;
    assert_eq!(
        ctrl.state().quarantines,
        pre_quarantines,
        "quarantines must be replayed from the journal"
    );
    ctrl.reconcile(&mut sb);
    let remaining: Vec<_> = rec
        .tail
        .iter()
        .cloned()
        .chain(events.iter().skip(drive.outcomes.len() + 1).cloned())
        .collect();
    ctrl.replay_damped_via(remaining.iter(), &mut sb, &install)
        .unwrap();
    // Cause-directed dedupe: trips sharing one attributed trigger
    // collapse into a single quarantine of the trigger hop.
    let effective: std::collections::BTreeSet<_> = events
        .iter()
        .filter_map(|e| e.effective_quarantine())
        .collect();
    assert_eq!(ctrl.state().quarantines.len(), effective.len());
    if events.len() > 1 && effective.len() == 1 {
        assert!(
            ctrl.state().quarantines.len() < events.len(),
            "attributed trips must dedupe into one quarantine"
        );
    }

    // 5. The corrective tables re-certify deadlock-free.
    let verdict = Auditor::new(topo.clone()).audit(ctrl.committed().epoch, &ctrl.committed().rules);
    assert!(verdict.is_certified(), "corrective tables must certify");
    assert!(ctrl.metrics().watchdog_trips >= 1);
    std::fs::remove_file(jpath).ok();
}

/// Path display and port resolution survive the facade re-exports.
#[test]
fn facade_reexports_work() {
    let topo = ClosConfig::small().build();
    let p = Path::from_names(&topo, &["H1", "T1", "L1"]);
    assert_eq!(format!("{}", p.display(&topo)), "H1 -> T1 -> L1");
    assert_eq!(p.bounces(&topo), 0);
}
