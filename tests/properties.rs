//! Cross-crate property-based tests (proptest): the paper's invariants
//! must hold over randomized topologies, ELPs and failure patterns —
//! not just the hand-picked scenarios.

use proptest::prelude::*;
use tagger::core::clos::clos_tagging;
use tagger::core::{greedy_minimize, tag_by_hop_count, Elp, Tagging};
use tagger::routing::{bounce_paths_between_capped, shortest_paths_between, Fib};
use tagger::topo::{ClosConfig, FailureSet, JellyfishConfig, LinkId};

fn arb_clos() -> impl Strategy<Value = ClosConfig> {
    (2usize..=3, 2usize..=3, 2usize..=3, 2usize..=4, 1usize..=3).prop_map(
        |(pods, leaves, tors, spines, hosts)| ClosConfig {
            pods,
            leaves_per_pod: leaves,
            tors_per_pod: tors,
            spines,
            hosts_per_tor: hosts,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 5.1 requirements hold for the Clos construction on any
    /// Clos dimensioning and any bounce budget.
    #[test]
    fn clos_tagging_always_verifies(cfg in arb_clos(), k in 0usize..3) {
        let topo = cfg.build();
        let tagging = clos_tagging(&topo, k).unwrap();
        prop_assert_eq!(tagging.graph().verify(), Ok(()));
        prop_assert_eq!(tagging.num_lossless_tags_on(&topo), k + 1);
    }

    /// Algorithm 1 output always verifies and uses exactly as many switch
    /// tags as the longest route's switch-hop count.
    #[test]
    fn brute_force_always_verifies(cfg in arb_clos(), seed in 0u64..1000) {
        let topo = cfg.build();
        let hosts: Vec<_> = topo.host_ids().collect();
        let a = hosts[seed as usize % hosts.len()];
        let b = hosts[(seed as usize / hosts.len()) % hosts.len()];
        prop_assume!(a != b);
        let paths = bounce_paths_between_capped(
            &topo, &FailureSet::none(), a, b, 1, 10);
        prop_assume!(!paths.is_empty());
        let elp = Elp::from_paths(paths);
        let g = tag_by_hop_count(&topo, &elp);
        prop_assert_eq!(g.verify(), Ok(()));
        let merged = greedy_minimize(&topo, &g);
        prop_assert_eq!(merged.verify(), Ok(()));
        prop_assert!(merged.num_lossless_tags(&topo) <= g.num_lossless_tags(&topo));
    }

    /// The full pipeline on random Jellyfish fabrics: certified
    /// deadlock-free, ELP-lossless, no fallback, few tags.
    #[test]
    fn jellyfish_pipeline_invariants(
        switches in 8usize..24,
        seed in 0u64..100,
    ) {
        let topo = JellyfishConfig::half_servers(switches, 6, seed).build();
        let elp = Elp::shortest(&topo, 1, false);
        prop_assume!(!elp.is_empty());
        let tagging = Tagging::from_elp(&topo, &elp).unwrap();
        prop_assert_eq!(tagging.graph().verify(), Ok(()));
        tagging.check_elp_lossless(&topo, &elp).unwrap();
        prop_assert!(tagging.num_lossless_tags_on(&topo) <= 4);
    }

    /// Under arbitrary single-link failures, a shortest-path FIB either
    /// routes around (reaching the destination) or has genuinely no
    /// route; it never loops.
    #[test]
    fn fib_never_loops_under_failures(
        cfg in arb_clos(),
        fail_seed in 0u64..1000,
        pair_seed in 0u64..1000,
    ) {
        let topo = cfg.build();
        let mut failures = FailureSet::none();
        let link = LinkId((fail_seed % topo.num_links() as u64) as u32);
        failures.fail(link);
        let fib = Fib::shortest_path(&topo, &failures);
        let hosts: Vec<_> = topo.host_ids().collect();
        let src = hosts[pair_seed as usize % hosts.len()];
        let dst = hosts[(pair_seed as usize / 7) % hosts.len()];
        prop_assume!(src != dst);
        let trace = fib.trace(&topo, src, dst, 64);
        // Either delivered, or stopped early (no route) — never 64 hops.
        prop_assert!(trace.len() < 60, "suspicious trace length {}", trace.len());
        let last = *trace.last().unwrap();
        if last == dst {
            // Delivered: by definition of shortest-path FIB the length is
            // bounded by healthy diameter + detour.
            prop_assert!(trace.len() <= 16);
        }
    }

    /// Shortest paths under failures never use a failed link and are
    /// never shorter than the healthy distance.
    #[test]
    fn failure_reroutes_are_sound(
        cfg in arb_clos(),
        fail_seed in 0u64..1000,
    ) {
        let topo = cfg.build();
        let mut failures = FailureSet::none();
        failures.fail(LinkId((fail_seed % topo.num_links() as u64) as u32));
        let hosts: Vec<_> = topo.host_ids().collect();
        let (a, b) = (hosts[0], hosts[hosts.len() - 1]);
        let healthy = shortest_paths_between(&topo, &FailureSet::none(), a, b, 4);
        let live = shortest_paths_between(&topo, &failures, a, b, 4);
        prop_assume!(!healthy.is_empty() && !live.is_empty());
        prop_assert!(live[0].hops() >= healthy[0].hops());
        for p in &live {
            for (x, y) in p.hop_pairs() {
                prop_assert!(failures.link_up(&topo, x, y));
            }
        }
    }
}
